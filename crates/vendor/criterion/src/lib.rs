//! Offline stand-in for the
//! [`criterion`](https://crates.io/crates/criterion) benchmark harness.
//!
//! The build environment has no registry access, so this vendored crate
//! implements the criterion API surface the workspace's bench targets
//! use — [`criterion_group!`]/[`criterion_main!`], [`Criterion`] with
//! builder-style configuration, [`BenchmarkGroup`]s, `Bencher::iter` —
//! with genuinely useful behavior:
//!
//! * **measurement mode** (default): warm up, then time batches until
//!   the configured measurement window elapses, and print
//!   mean/min/max ns per iteration;
//! * **`--test` smoke mode** (`cargo bench -- --test`): run each
//!   routine exactly once and print `Testing <name> ... ok`, matching
//!   upstream criterion's behavior so CI can verify every bench target
//!   executes without paying for measurement.
//!
//! Statistical outlier analysis, HTML reports, and baseline comparison
//! are intentionally out of scope; swapping the workspace dependency
//! back to upstream criterion restores them without source changes.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Harness mode, decided from the command line cargo passes through.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Mode {
    /// Time every routine and report ns/iter.
    Measure,
    /// Run every routine once (`--test`): compile-and-execute smoke.
    Test,
    /// Enumerate routine names (`--list`).
    List,
}

/// The benchmark manager: holds configuration and runs routines.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    mode: Mode,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 100,
            measurement_time: Duration::from_secs(5),
            warm_up_time: Duration::from_secs(3),
            mode: Mode::Measure,
            filter: None,
        }
    }
}

impl Criterion {
    /// Sets the target number of timed samples per routine.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 10, "sample_size must be at least 10");
        self.sample_size = n;
        self
    }

    /// Sets the measurement window per routine.
    #[must_use]
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Sets the warm-up window per routine.
    #[must_use]
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Applies the command-line arguments cargo forwards after `--`
    /// (`--test`, `--list`, `--bench`, or a name substring filter).
    #[must_use]
    pub fn configure_from_args(mut self) -> Self {
        let mut args = std::env::args().skip(1);
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--test" => self.mode = Mode::Test,
                "--list" => self.mode = Mode::List,
                // Accepted for upstream compatibility; measurement is
                // already the default.
                "--bench" => {}
                // Output/report shaping flags upstream accepts; the
                // value-taking ones consume their argument.
                "--save-baseline" | "--baseline" | "--load-baseline" | "--measurement-time"
                | "--warm-up-time" | "--sample-size" | "--output-format" | "--color"
                | "--profile-time" => {
                    let _ = args.next();
                }
                "--noplot" | "--quiet" | "--verbose" | "--exact" | "--nocapture" => {}
                s if !s.starts_with('-') => self.filter = Some(s.to_string()),
                _ => {}
            }
        }
        self
    }

    /// Benchmarks one routine under `id`.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run_one(id.to_string(), f);
        self
    }

    /// Opens a named group of related routines.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
        }
    }

    /// Prints the closing summary (no-op in the stand-in).
    pub fn final_summary(&mut self) {}

    fn run_one<F>(&mut self, id: String, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        if let Some(filter) = &self.filter {
            if !id.contains(filter.as_str()) {
                return;
            }
        }
        match self.mode {
            Mode::List => {
                println!("{id}: benchmark");
                return;
            }
            Mode::Test => {
                print!("Testing {id} ... ");
                let mut b = Bencher {
                    spec: IterSpec::Once,
                    summary: None,
                };
                f(&mut b);
                println!("ok");
                return;
            }
            Mode::Measure => {}
        }
        let mut b = Bencher {
            spec: IterSpec::Measure {
                warm_up: self.warm_up_time,
                window: self.measurement_time,
                samples: self.sample_size,
            },
            summary: None,
        };
        f(&mut b);
        match b.summary {
            Some(s) => println!(
                "{id:<40} time: [{} {} {}]",
                format_ns(s.min_ns),
                format_ns(s.mean_ns),
                format_ns(s.max_ns),
            ),
            None => println!("{id:<40} (no iterations recorded)"),
        }
    }
}

fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.2} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

enum IterSpec {
    Once,
    Measure {
        warm_up: Duration,
        window: Duration,
        samples: usize,
    },
}

struct Summary {
    mean_ns: f64,
    min_ns: f64,
    max_ns: f64,
}

/// Passed to each routine; call [`Bencher::iter`] with the code under
/// test.
pub struct Bencher {
    spec: IterSpec,
    summary: Option<Summary>,
}

impl Bencher {
    /// Runs `routine` according to the harness mode and records timing.
    pub fn iter<O, F>(&mut self, mut routine: F)
    where
        F: FnMut() -> O,
    {
        match self.spec {
            IterSpec::Once => {
                black_box(routine());
            }
            IterSpec::Measure {
                warm_up,
                window,
                samples,
            } => {
                // Warm-up: also sizes the per-sample batch so each
                // timed sample is long enough for the clock.
                let warm_start = Instant::now();
                let mut iters_in_warmup: u64 = 0;
                while warm_start.elapsed() < warm_up {
                    black_box(routine());
                    iters_in_warmup += 1;
                }
                let per_iter = warm_start.elapsed().as_secs_f64() / iters_in_warmup as f64;
                let per_sample = window.as_secs_f64() / samples as f64;
                let batch = ((per_sample / per_iter.max(1e-9)).ceil() as u64).max(1);

                let mut min_ns = f64::INFINITY;
                let mut max_ns = 0.0f64;
                let mut total_ns = 0.0f64;
                let mut total_iters = 0u64;
                let run_start = Instant::now();
                for _ in 0..samples {
                    let t = Instant::now();
                    for _ in 0..batch {
                        black_box(routine());
                    }
                    let ns = t.elapsed().as_nanos() as f64 / batch as f64;
                    min_ns = min_ns.min(ns);
                    max_ns = max_ns.max(ns);
                    total_ns += ns * batch as f64;
                    total_iters += batch;
                    if run_start.elapsed() > window * 2 {
                        break; // routine much slower than the warm-up predicted
                    }
                }
                self.summary = Some(Summary {
                    mean_ns: total_ns / total_iters as f64,
                    min_ns,
                    max_ns,
                });
            }
        }
    }
}

/// A named group of routines sharing a prefix, mirroring criterion's
/// `BenchmarkGroup`.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Benchmarks one routine under `group/name`.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{id}", self.name);
        self.criterion.run_one(full, f);
        self
    }

    /// Closes the group (no summary in the stand-in).
    pub fn finish(self) {}
}

/// Declares a group of benchmark functions with optional shared
/// configuration, mirroring criterion's macro of the same name.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $config.configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the bench entry point, mirroring criterion's macro of the
/// same name. Requires `harness = false` on the `[[bench]]` target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
            $crate::Criterion::default().configure_from_args().final_summary();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(mode: Mode) -> Criterion {
        Criterion {
            sample_size: 10,
            measurement_time: Duration::from_millis(20),
            warm_up_time: Duration::from_millis(5),
            mode,
            filter: None,
        }
    }

    #[test]
    fn test_mode_runs_routine_exactly_once() {
        let mut calls = 0u32;
        run(Mode::Test).bench_function("once", |b| b.iter(|| calls += 1));
        assert_eq!(calls, 1);
    }

    #[test]
    fn measure_mode_produces_a_summary() {
        let mut c = run(Mode::Measure);
        let mut ran = false;
        c.bench_function("spin", |b| {
            b.iter(|| black_box(3u64).wrapping_mul(5));
            ran = true;
        });
        assert!(ran);
    }

    #[test]
    fn filter_skips_non_matching_ids() {
        let mut c = run(Mode::Test);
        c.filter = Some("match".into());
        let mut calls = 0u32;
        c.bench_function("no", |b| b.iter(|| calls += 1));
        c.bench_function("does_match", |b| b.iter(|| calls += 1));
        assert_eq!(calls, 1);
    }

    #[test]
    fn groups_prefix_ids() {
        let mut c = run(Mode::Test);
        c.filter = Some("grp/inner".into());
        let mut calls = 0u32;
        let mut g = c.benchmark_group("grp");
        g.bench_function("inner", |b| b.iter(|| calls += 1));
        g.finish();
        assert_eq!(calls, 1);
    }
}
