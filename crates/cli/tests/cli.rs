//! End-to-end tests of the `compstat` binary: the acceptance criteria
//! of the unified engine. `run --all --scale quick --out dir/` must
//! complete offline, emit one schema-valid JSON report per registered
//! experiment plus an index, and the emitted bytes must be identical
//! for `--threads 1` vs `--threads 4`.

use compstat_core::json::Json;
use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn compstat(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_compstat"))
        .args(args)
        .output()
        .expect("compstat binary runs")
}

fn tmp_dir(name: &str) -> PathBuf {
    let dir = Path::new(env!("CARGO_TARGET_TMPDIR")).join(name);
    // A stale directory from a previous run would mask missing files.
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn list_names_every_registered_experiment() {
    let out = compstat(&["list"]);
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    for e in compstat_bench::registry() {
        assert!(
            text.lines().any(|l| l.starts_with(e.name())),
            "missing {} in:\n{text}",
            e.name()
        );
    }
}

#[test]
fn usage_errors_exit_2() {
    for args in [
        &["run"][..],
        &["run", "fig99"],
        &["run", "--all", "--scale", "warp"],
        &["frobnicate"],
        &["list", "extra"],
    ] {
        let out = compstat(args);
        assert_eq!(out.status.code(), Some(2), "args {args:?}");
    }
    // help goes to stdout and exits 0.
    let out = compstat(&["help"]);
    assert!(out.status.success());
    assert!(String::from_utf8(out.stdout).unwrap().contains("USAGE"));
}

#[test]
fn run_without_out_prints_text_reports() {
    let out = compstat(&["run", "tab01", "tab02", "--scale", "quick"]);
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("Table I: dynamic range"));
    assert!(text.contains("binary64 add"));
}

#[test]
fn run_all_quick_emits_identical_bytes_for_any_thread_count() {
    let dir1 = tmp_dir("reports-t1");
    let dir4 = tmp_dir("reports-t4");
    for (threads, dir) in [("1", &dir1), ("4", &dir4)] {
        let out = compstat(&[
            "run",
            "--all",
            "--scale",
            "quick",
            "--threads",
            threads,
            "--out",
            dir.to_str().unwrap(),
        ]);
        assert!(
            out.status.success(),
            "threads={threads}: {}",
            String::from_utf8_lossy(&out.stderr)
        );
    }

    // One report per registered experiment, plus the index.
    let expected: Vec<String> = compstat_bench::registry()
        .iter()
        .map(|e| format!("{}.json", e.name()))
        .chain(std::iter::once("index.json".to_string()))
        .collect();
    let mut found: Vec<String> = std::fs::read_dir(&dir1)
        .unwrap()
        .map(|e| e.unwrap().file_name().into_string().unwrap())
        .collect();
    found.sort();
    let mut want = expected.clone();
    want.sort();
    assert_eq!(found, want);

    // Byte-for-byte identical across thread counts, and schema-valid.
    for file in &expected {
        let a = std::fs::read(dir1.join(file)).unwrap();
        let b = std::fs::read(dir4.join(file)).unwrap();
        assert_eq!(a, b, "{file} differs between --threads 1 and --threads 4");
        let doc =
            Json::parse(std::str::from_utf8(&a).unwrap()).unwrap_or_else(|e| panic!("{file}: {e}"));
        let schema = doc.get("schema").and_then(Json::as_str).unwrap();
        assert!(
            schema == "compstat-report/v1" || schema == "compstat-index/v1",
            "{file}: schema {schema}"
        );
    }

    // The index enumerates exactly the emitted reports.
    let index = Json::parse(&std::fs::read_to_string(dir1.join("index.json")).unwrap()).unwrap();
    assert_eq!(
        index.get("count").unwrap().as_f64().unwrap() as usize,
        compstat_bench::registry().len()
    );
    assert_eq!(index.get("scale").unwrap().as_str(), Some("quick"));
    for entry in index.get("experiments").unwrap().as_arr().unwrap() {
        let file = entry.get("file").unwrap().as_str().unwrap();
        assert!(dir1.join(file).is_file(), "index names missing file {file}");
    }

    // The validate subcommand agrees.
    let out = compstat(&["validate", dir1.to_str().unwrap()]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let valid_line = format!("{} document(s) valid", compstat_bench::registry().len() + 1);
    assert!(String::from_utf8(out.stdout).unwrap().contains(&valid_line));
}

#[test]
fn validate_rejects_malformed_documents() {
    let dir = tmp_dir("reports-bad");
    std::fs::create_dir_all(&dir).unwrap();
    std::fs::write(dir.join("broken.json"), "{\"schema\": ").unwrap();
    let out = compstat(&["validate", dir.to_str().unwrap()]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("broken.json"));

    // Valid JSON with an unknown schema also fails.
    std::fs::write(dir.join("broken.json"), "{\"schema\": \"mystery/v9\"}").unwrap();
    let out = compstat(&["validate", dir.to_str().unwrap()]);
    assert!(!out.status.success());
}

#[test]
fn validate_recurses_into_nested_report_directories() {
    // Sharded runs nest report directories; validate must find them.
    let root = tmp_dir("reports-nested");
    let sub = root.join("run1");
    let out = compstat(&[
        "run",
        "tab01",
        "--scale",
        "quick",
        "--out",
        sub.to_str().unwrap(),
    ]);
    assert!(out.status.success());
    let out = compstat(&["validate", root.to_str().unwrap()]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8(out.stdout)
        .unwrap()
        .contains("2 document(s) valid"));
}

#[test]
fn single_report_matches_the_library_run() {
    // The binary's emitted JSON is exactly what the library produces:
    // no CLI-layer drift in the report pipeline.
    let dir = tmp_dir("reports-one");
    let out = compstat(&[
        "run",
        "fig01",
        "--scale",
        "quick",
        "--threads",
        "2",
        "--out",
        dir.to_str().unwrap(),
    ]);
    assert!(out.status.success());
    let from_cli = std::fs::read_to_string(dir.join("fig01.json")).unwrap();
    let from_lib = compstat_bench::find("fig01")
        .unwrap()
        .run(
            &compstat_runtime::Runtime::serial(),
            compstat_core::Scale::Quick,
        )
        .to_json_string();
    assert_eq!(from_cli, from_lib);
}
