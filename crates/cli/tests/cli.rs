//! End-to-end tests of the `compstat` binary: the acceptance criteria
//! of the unified engine. `run --all --scale quick --out dir/` must
//! complete offline, emit one schema-valid JSON report per registered
//! experiment plus an index, and the emitted bytes must be identical
//! for `--threads 1` vs `--threads 4`.

use compstat_core::json::Json;
use std::path::{Path, PathBuf};
use std::process::{Command, Output};

/// Runs the binary with the oracle cache pinned to a shared directory
/// under the target tmpdir, so tests never write `.compstat-cache/`
/// into the source tree (concurrent tests may share it — cache writes
/// are atomic and content-addressed, so races are harmless).
fn compstat(args: &[&str]) -> Output {
    compstat_env(args, &[])
}

fn compstat_env(args: &[&str], env: &[(&str, &str)]) -> Output {
    let mut cmd = compstat_command(args);
    for (k, v) in env {
        cmd.env(k, v);
    }
    cmd.output().expect("compstat binary runs")
}

/// A scrubbed `Command` for tests that need to spawn rather than run
/// to completion (servers, broken-pipe scenarios).
fn compstat_command(args: &[&str]) -> Command {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_compstat"));
    // Scrub every COMPSTAT_* knob the developer may have exported —
    // an ambient COMPSTAT_CACHE=off or COMPSTAT_THREADS=garbage must
    // not change what these tests assert.
    for knob in ["COMPSTAT_CACHE", "COMPSTAT_THREADS", "COMPSTAT_SCALE"] {
        cmd.env_remove(knob);
    }
    cmd.args(args).env(
        "COMPSTAT_CACHE_DIR",
        Path::new(env!("CARGO_TARGET_TMPDIR")).join("shared-oracle-cache"),
    );
    cmd
}

fn tmp_dir(name: &str) -> PathBuf {
    let dir = Path::new(env!("CARGO_TARGET_TMPDIR")).join(name);
    // A stale directory from a previous run would mask missing files.
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn list_names_every_registered_experiment() {
    let out = compstat(&["list"]);
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    for e in compstat_bench::registry() {
        assert!(
            text.lines().any(|l| l.starts_with(e.name())),
            "missing {} in:\n{text}",
            e.name()
        );
    }
}

#[test]
fn usage_errors_exit_2() {
    for args in [
        &["run"][..],
        &["run", "fig99"],
        &["run", "--all", "--scale", "warp"],
        &["frobnicate"],
        &["list", "extra"],
    ] {
        let out = compstat(args);
        assert_eq!(out.status.code(), Some(2), "args {args:?}");
    }
    // help goes to stdout and exits 0.
    let out = compstat(&["help"]);
    assert!(out.status.success());
    assert!(String::from_utf8(out.stdout).unwrap().contains("USAGE"));
}

#[test]
fn run_without_out_prints_text_reports() {
    let out = compstat(&["run", "tab01", "tab02", "--scale", "quick"]);
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("Table I: dynamic range"));
    assert!(text.contains("binary64 add"));
}

#[test]
fn run_all_quick_emits_identical_bytes_for_any_thread_count() {
    let dir1 = tmp_dir("reports-t1");
    let dir4 = tmp_dir("reports-t4");
    for (threads, dir) in [("1", &dir1), ("4", &dir4)] {
        let out = compstat(&[
            "run",
            "--all",
            "--scale",
            "quick",
            "--threads",
            threads,
            "--out",
            dir.to_str().unwrap(),
        ]);
        assert!(
            out.status.success(),
            "threads={threads}: {}",
            String::from_utf8_lossy(&out.stderr)
        );
    }

    // One report per registered experiment, plus the index.
    let expected: Vec<String> = compstat_bench::registry()
        .iter()
        .map(|e| format!("{}.json", e.name()))
        .chain(std::iter::once("index.json".to_string()))
        .collect();
    let mut found: Vec<String> = std::fs::read_dir(&dir1)
        .unwrap()
        .map(|e| e.unwrap().file_name().into_string().unwrap())
        .collect();
    found.sort();
    let mut want = expected.clone();
    want.sort();
    assert_eq!(found, want);

    // Byte-for-byte identical across thread counts, and schema-valid.
    for file in &expected {
        let a = std::fs::read(dir1.join(file)).unwrap();
        let b = std::fs::read(dir4.join(file)).unwrap();
        assert_eq!(a, b, "{file} differs between --threads 1 and --threads 4");
        let doc =
            Json::parse(std::str::from_utf8(&a).unwrap()).unwrap_or_else(|e| panic!("{file}: {e}"));
        let schema = doc.get("schema").and_then(Json::as_str).unwrap();
        assert!(
            schema == "compstat-report/v1" || schema == "compstat-index/v1",
            "{file}: schema {schema}"
        );
    }

    // The index enumerates exactly the emitted reports.
    let index = Json::parse(&std::fs::read_to_string(dir1.join("index.json")).unwrap()).unwrap();
    assert_eq!(
        index.get("count").unwrap().as_f64().unwrap() as usize,
        compstat_bench::registry().len()
    );
    assert_eq!(index.get("scale").unwrap().as_str(), Some("quick"));
    for entry in index.get("experiments").unwrap().as_arr().unwrap() {
        let file = entry.get("file").unwrap().as_str().unwrap();
        assert!(dir1.join(file).is_file(), "index names missing file {file}");
    }

    // The validate subcommand agrees.
    let out = compstat(&["validate", dir1.to_str().unwrap()]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let valid_line = format!("{} document(s) valid", compstat_bench::registry().len() + 1);
    assert!(String::from_utf8(out.stdout).unwrap().contains(&valid_line));
}

#[test]
fn validate_rejects_malformed_documents() {
    let dir = tmp_dir("reports-bad");
    std::fs::create_dir_all(&dir).unwrap();
    std::fs::write(dir.join("broken.json"), "{\"schema\": ").unwrap();
    let out = compstat(&["validate", dir.to_str().unwrap()]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("broken.json"));

    // Valid JSON with an unknown schema also fails.
    std::fs::write(dir.join("broken.json"), "{\"schema\": \"mystery/v9\"}").unwrap();
    let out = compstat(&["validate", dir.to_str().unwrap()]);
    assert!(!out.status.success());
}

#[test]
fn validate_reports_every_invalid_file_with_reasons() {
    // One invocation must name all invalid documents, not stop at the
    // first: two broken files plus one valid report.
    let dir = tmp_dir("reports-multi-bad");
    let out = compstat(&[
        "run",
        "tab01",
        "--scale",
        "quick",
        "--out",
        dir.to_str().unwrap(),
    ]);
    assert!(out.status.success());
    std::fs::write(dir.join("aa-truncated.json"), "{\"schema\": ").unwrap();
    std::fs::write(dir.join("zz-mystery.json"), "{\"schema\": \"mystery/v9\"}").unwrap();

    let out = compstat(&["validate", dir.to_str().unwrap()]);
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    // Both failures are named with per-file reasons, and the summary
    // counts them against the total.
    assert!(err.contains("aa-truncated.json"), "{err}");
    assert!(err.contains("JSON parse error"), "{err}");
    assert!(err.contains("zz-mystery.json"), "{err}");
    assert!(err.contains("unknown schema"), "{err}");
    assert!(err.contains("2 of 4 document(s) invalid"), "{err}");
}

/// Reads, mutates, and rewrites one report's first metric value.
fn perturb_first_metric(path: &Path, factor: f64) -> (String, f64, f64) {
    let text = std::fs::read_to_string(path).unwrap();
    let doc = Json::parse(&text).unwrap();
    let (key, old) = match doc.get("metrics") {
        Some(Json::Obj(pairs)) if !pairs.is_empty() => (
            pairs[0].0.clone(),
            pairs[0].1.as_f64().expect("metric is numeric"),
        ),
        other => panic!("report has no metrics to perturb: {other:?}"),
    };
    let new = old * factor;
    let rebuilt = match doc {
        Json::Obj(pairs) => Json::Obj(
            pairs
                .into_iter()
                .map(|(k, v)| {
                    if k == "metrics" {
                        let Json::Obj(metrics) = v else {
                            unreachable!()
                        };
                        let metrics = metrics
                            .into_iter()
                            .map(|(mk, mv)| {
                                if mk == key {
                                    (mk, Json::Num(new))
                                } else {
                                    (mk, mv)
                                }
                            })
                            .collect();
                        (k, Json::Obj(metrics))
                    } else {
                        (k, v)
                    }
                })
                .collect(),
        ),
        _ => unreachable!(),
    };
    let mut bytes = rebuilt.to_json_string();
    bytes.push('\n');
    std::fs::write(path, bytes).unwrap();
    (key, old, new)
}

fn copy_dir(from: &Path, to: &Path) {
    std::fs::create_dir_all(to).unwrap();
    for entry in std::fs::read_dir(from).unwrap() {
        let path = entry.unwrap().path();
        std::fs::copy(&path, to.join(path.file_name().unwrap())).unwrap();
    }
}

#[test]
fn diff_verdicts_map_onto_exit_codes() {
    // Baseline: two quick experiments with metrics.
    let base = tmp_dir("diff-base");
    let out = compstat(&[
        "run",
        "fig01",
        "tab02",
        "--scale",
        "quick",
        "--out",
        base.to_str().unwrap(),
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    // Identical copy: exit 0, clean.
    let same = tmp_dir("diff-same");
    copy_dir(&base, &same);
    let out = compstat(&["diff", base.to_str().unwrap(), same.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(0));
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("status: clean"), "{text}");

    // Perturb one metric in one report: exit 2, and the output names
    // the experiment, the metric, both values, and the relative delta.
    let worse = tmp_dir("diff-worse");
    copy_dir(&base, &worse);
    let (key, old, new) = perturb_first_metric(&worse.join("fig01.json"), 1.5);
    let out = compstat(&["diff", base.to_str().unwrap(), worse.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(2));
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains(&format!("fig01: metric '{key}'")), "{text}");
    assert!(text.contains("status: violations"), "{text}");
    assert!(text.contains("rel 5.000e-1"), "{text}");
    assert!(
        text.contains(&Json::Num(old).to_json_string())
            && text.contains(&Json::Num(new).to_json_string()),
        "{text}"
    );

    // The same perturbation under a generous tolerance: exit 1.
    let tol = tmp_dir("diff-tol");
    std::fs::create_dir_all(&tol).unwrap();
    let tol_file = tol.join("tolerances.json");
    std::fs::write(
        &tol_file,
        format!(
            "{{\"schema\":\"compstat-tolerances/v1\",\"overrides\":{{\"{key}\":\"rel=0.51\"}}}}"
        ),
    )
    .unwrap();
    let out = compstat(&[
        "diff",
        base.to_str().unwrap(),
        worse.to_str().unwrap(),
        "--tolerances",
        tol_file.to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(1));
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("status: within-tolerance"), "{text}");

    // --json emits a parseable compstat-diff/v1 document carrying the
    // same verdict and change.
    let out = compstat(&[
        "diff",
        base.to_str().unwrap(),
        worse.to_str().unwrap(),
        "--json",
    ]);
    assert_eq!(out.status.code(), Some(2));
    let doc = Json::parse(&String::from_utf8(out.stdout).unwrap()).unwrap();
    assert_eq!(
        doc.get("schema").unwrap().as_str(),
        Some("compstat-diff/v1")
    );
    assert_eq!(doc.get("status").unwrap().as_str(), Some("violations"));
    assert_eq!(doc.get("violations").unwrap().as_f64(), Some(1.0));
    let changes = doc.get("changes").unwrap().as_arr().unwrap();
    assert_eq!(changes.len(), 1);
    assert_eq!(
        changes[0].get("experiment").unwrap().as_str(),
        Some("fig01")
    );
    let rel = changes[0].get("rel").unwrap().as_f64().unwrap();
    assert!((rel - 0.5).abs() < 1e-9, "rel {rel}");
}

#[test]
fn diff_detects_added_and_removed_experiments() {
    let small = tmp_dir("diff-small");
    let big = tmp_dir("diff-big");
    for (names, dir) in [(&["tab01"][..], &small), (&["tab01", "tab02"][..], &big)] {
        let mut args = vec!["run"];
        args.extend(names);
        args.extend(["--scale", "quick", "--out", dir.to_str().unwrap()]);
        assert!(compstat(&args).status.success());
    }
    let out = compstat(&["diff", small.to_str().unwrap(), big.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(2));
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("added:   tab02"), "{text}");

    let out = compstat(&["diff", big.to_str().unwrap(), small.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(2));
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("removed: tab02"), "{text}");
}

#[test]
fn diff_errors_exit_3_with_clear_messages() {
    let good = tmp_dir("diff-good");
    let out = compstat(&[
        "run",
        "tab01",
        "--scale",
        "quick",
        "--out",
        good.to_str().unwrap(),
    ]);
    assert!(out.status.success());

    // Missing index.json (empty directory): clear error, no panic.
    let empty = tmp_dir("diff-empty");
    std::fs::create_dir_all(&empty).unwrap();
    let out = compstat(&["diff", good.to_str().unwrap(), empty.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(3));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("cannot read index"), "{err}");

    // Corrupt index.json.
    let corrupt = tmp_dir("diff-corrupt");
    copy_dir(&good, &corrupt);
    std::fs::write(corrupt.join("index.json"), "{\"schema\": ").unwrap();
    let out = compstat(&["diff", good.to_str().unwrap(), corrupt.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(3));
    assert!(String::from_utf8_lossy(&out.stderr).contains("index.json"));

    // Unreadable tolerance file.
    let out = compstat(&[
        "diff",
        good.to_str().unwrap(),
        good.to_str().unwrap(),
        "--tolerances",
        empty.join("nope.json").to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(3));

    // Usage errors share the trouble code, keeping 0/1/2 as verdicts.
    for args in [
        &["diff"][..],
        &["diff", "one-dir-only"],
        &["diff", "a", "b", "c"],
        &["diff", "a", "b", "--bogus"],
    ] {
        let out = compstat(args);
        assert_eq!(out.status.code(), Some(3), "args {args:?}");
    }
}

#[test]
fn validate_recurses_into_nested_report_directories() {
    // Sharded runs nest report directories; validate must find them.
    let root = tmp_dir("reports-nested");
    let sub = root.join("run1");
    let out = compstat(&[
        "run",
        "tab01",
        "--scale",
        "quick",
        "--out",
        sub.to_str().unwrap(),
    ]);
    assert!(out.status.success());
    let out = compstat(&["validate", root.to_str().unwrap()]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8(out.stdout)
        .unwrap()
        .contains("2 document(s) valid"));
}

#[test]
fn cache_cold_warm_and_no_cache_runs_are_byte_identical() {
    // The oracle-cache acceptance story end to end, on the three
    // cached experiments: a cold-cache run, a warm-cache run, and a
    // --no-cache run must emit byte-identical reports; the warm run
    // must actually hit; `cache stats` and `cache clear` must see it
    // all.
    let cache_dir = tmp_dir("oracle-cache-private");
    let env: Vec<(&str, &str)> = vec![("COMPSTAT_CACHE_DIR", cache_dir.to_str().unwrap())];
    let names = ["fig09", "fig10", "fig11"];

    let run = |out: &Path, extra: &[&str]| {
        let mut args = vec!["run"];
        args.extend(names);
        args.extend([
            "--scale",
            "quick",
            "--threads",
            "2",
            "--out",
            out.to_str().unwrap(),
        ]);
        args.extend(extra);
        let got = compstat_env(&args, &env);
        assert!(
            got.status.success(),
            "{args:?}: {}",
            String::from_utf8_lossy(&got.stderr)
        );
        String::from_utf8_lossy(&got.stderr).into_owned()
    };

    let cold_dir = tmp_dir("cache-cold");
    let warm_dir = tmp_dir("cache-warm");
    let off_dir = tmp_dir("cache-off");
    let cold_log = run(&cold_dir, &[]);
    assert!(cold_log.contains("oracle cache:"), "{cold_log}");
    let warm_log = run(&warm_dir, &[]);
    let off_log = run(&off_dir, &["--no-cache"]);
    assert!(
        !off_log.contains("oracle cache:"),
        "--no-cache must not report cache activity:\n{off_log}"
    );

    // Byte-for-byte identical across all three modes.
    let files: Vec<String> = names
        .iter()
        .map(|n| format!("{n}.json"))
        .chain(std::iter::once("index.json".to_string()))
        .collect();
    for file in &files {
        let cold = std::fs::read(cold_dir.join(file)).unwrap();
        assert_eq!(
            cold,
            std::fs::read(warm_dir.join(file)).unwrap(),
            "{file}: cold vs warm"
        );
        assert_eq!(
            cold,
            std::fs::read(off_dir.join(file)).unwrap(),
            "{file}: cold vs --no-cache"
        );
    }
    // Atomic writes leave no temp droppings behind.
    for dir in [&cold_dir, &warm_dir, &off_dir, &cache_dir] {
        for entry in std::fs::read_dir(dir).unwrap() {
            let name = entry.unwrap().file_name().into_string().unwrap();
            assert!(
                !name.contains(".tmp-"),
                "leftover temp file {name} in {dir:?}"
            );
        }
    }

    // The warm run hit on every oracle sweep: fig09+fig11 share the
    // corpus key, fig10 has two (one per sequence length), so cold =
    // 3 misses / 1 hit (fig11 reuses fig09's entry) and warm = 4 hits.
    assert!(warm_log.contains("4 hit(s), 0 miss(es)"), "{warm_log}");
    let stats = compstat_env(&["cache", "stats"], &env);
    assert!(stats.status.success());
    let stats_text = String::from_utf8(stats.stdout).unwrap();
    assert!(stats_text.contains("entries: 3"), "{stats_text}");
    assert!(
        stats_text.contains("last run: 4 hit(s), 0 miss(es)"),
        "{stats_text}"
    );

    // clear empties the store and stats; a fresh run is cold again.
    let cleared = compstat_env(&["cache", "clear"], &env);
    assert!(cleared.status.success());
    let stats_text = String::from_utf8(compstat_env(&["cache", "stats"], &env).stdout).unwrap();
    assert!(stats_text.contains("entries: 0"), "{stats_text}");

    // Corruption recovery end to end: rebuild the cache, tamper with
    // every entry, and re-run — reports stay byte-identical and the
    // entries are rewritten.
    let rebuilt = run(&tmp_dir("cache-rebuild"), &[]);
    assert!(rebuilt.contains("3 miss(es)"), "{rebuilt}");
    let mut tampered = 0;
    for entry in std::fs::read_dir(&cache_dir).unwrap() {
        let path = entry.unwrap().path();
        if path.extension().is_some_and(|e| e == "bfc") {
            let mut bytes = std::fs::read(&path).unwrap();
            let mid = bytes.len() / 2;
            bytes[mid] ^= 0xFF;
            std::fs::write(&path, bytes).unwrap();
            tampered += 1;
        }
    }
    assert_eq!(tampered, 3);
    let recovered_dir = tmp_dir("cache-recovered");
    let recovered_log = run(&recovered_dir, &[]);
    assert!(
        recovered_log.contains("discarding corrupt cache entry"),
        "{recovered_log}"
    );
    for file in &files {
        assert_eq!(
            std::fs::read(cold_dir.join(file)).unwrap(),
            std::fs::read(recovered_dir.join(file)).unwrap(),
            "{file}: corrupt-cache run must recompute identical bytes"
        );
    }

    let usage = compstat_env(&["cache", "frobnicate"], &env);
    assert_eq!(usage.status.code(), Some(2));
}

#[test]
fn unrecognized_compstat_cache_value_warns_instead_of_silently_defaulting() {
    let out = compstat_env(
        &["run", "tab01", "--scale", "quick"],
        &[("COMPSTAT_CACHE", "OFFF")],
    );
    assert!(out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("COMPSTAT_CACHE"), "{err}");
    assert!(err.contains("OFFF"), "{err}");
    // Case-insensitive spellings are accepted silently.
    let out = compstat_env(
        &["run", "tab01", "--scale", "quick"],
        &[("COMPSTAT_CACHE", "OFF")],
    );
    assert!(out.status.success());
    assert!(
        !String::from_utf8_lossy(&out.stderr).contains("warning"),
        "OFF must parse case-insensitively"
    );
}

#[test]
fn bad_compstat_threads_env_is_a_clear_error_not_a_silent_fallback() {
    for bad in ["abc", "-1", "999999999999"] {
        let out = compstat_env(
            &["run", "tab01", "--scale", "quick"],
            &[("COMPSTAT_THREADS", bad)],
        );
        assert_eq!(out.status.code(), Some(2), "COMPSTAT_THREADS={bad}");
        let err = String::from_utf8_lossy(&out.stderr);
        assert!(err.contains("COMPSTAT_THREADS"), "{err}");
        assert!(err.contains(bad), "{err}");
    }
    // Empty is the documented "treat as unset" convenience.
    let out = compstat_env(
        &["run", "tab01", "--scale", "quick"],
        &[("COMPSTAT_THREADS", "")],
    );
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
}

#[test]
fn bad_shard_values_exit_2_and_name_the_value() {
    for bad in ["0/3", "4/3", "a/b", "3/0", "3", ""] {
        let out = compstat(&["run", "--all", "--scale", "quick", "--shard", bad]);
        assert_eq!(out.status.code(), Some(2), "--shard {bad:?}");
        let err = String::from_utf8_lossy(&out.stderr);
        assert!(
            err.contains(&format!("\"{bad}\"")),
            "--shard {bad:?} error must name the value:\n{err}"
        );
    }
    // --shard partitions the registry; it cannot combine with names,
    // and requires --all.
    for args in [
        &["run", "fig01", "--scale", "quick", "--shard", "1/2"][..],
        &["run", "--scale", "quick", "--shard", "1/2"],
        &["run", "--all", "--scale", "quick", "--shard"],
    ] {
        let out = compstat(args);
        assert_eq!(out.status.code(), Some(2), "args {args:?}");
    }
}

fn read_dir_bytes(dir: &Path) -> Vec<(String, Vec<u8>)> {
    let mut files: Vec<(String, Vec<u8>)> = std::fs::read_dir(dir)
        .unwrap()
        .map(|e| {
            let path = e.unwrap().path();
            (
                path.file_name().unwrap().to_str().unwrap().to_string(),
                std::fs::read(&path).unwrap(),
            )
        })
        .collect();
    files.sort();
    files
}

#[test]
fn sharded_runs_merge_back_byte_identical_to_unsharded() {
    // The distributed-run acceptance story through the binary: three
    // `--shard K/3` runs at different thread counts, merged, must be
    // byte-for-byte the directory a single unsharded run writes. The
    // same shard dirs then exercise merge's refusal modes.
    let unsharded = tmp_dir("shard-unsharded");
    let out = compstat(&[
        "run",
        "--all",
        "--scale",
        "quick",
        "--threads",
        "2",
        "--out",
        unsharded.to_str().unwrap(),
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    let mut shard_dirs = Vec::new();
    for k in 1..=3usize {
        let dir = tmp_dir(&format!("shard-{k}-of-3"));
        let out = compstat(&[
            "run",
            "--all",
            "--scale",
            "quick",
            "--threads",
            &k.to_string(),
            "--shard",
            &format!("{k}/3"),
            "--out",
            dir.to_str().unwrap(),
        ]);
        assert!(
            out.status.success(),
            "shard {k}/3: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        // Each shard's index carries its stamp.
        let index = Json::parse(&std::fs::read_to_string(dir.join("index.json")).unwrap()).unwrap();
        let stamp = index.get("shard").expect("shard index is stamped");
        assert_eq!(stamp.get("index").unwrap().as_f64(), Some(k as f64));
        assert_eq!(stamp.get("count").unwrap().as_f64(), Some(3.0));
        shard_dirs.push(dir);
    }

    let merged = tmp_dir("shard-merged");
    let mut args = vec!["merge"];
    // Reversed argument order: merge reassembles from the stamps.
    for dir in shard_dirs.iter().rev() {
        args.push(dir.to_str().unwrap());
    }
    args.extend(["--out", merged.to_str().unwrap()]);
    let out = compstat(&args);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(
        text.contains("merged 3 shard(s)") && text.contains("at scale quick"),
        "{text}"
    );

    let want = read_dir_bytes(&unsharded);
    let got = read_dir_bytes(&merged);
    assert_eq!(
        want.len(),
        compstat_bench::registry().len() + 1,
        "17 reports + index.json"
    );
    for ((wname, wbytes), (gname, gbytes)) in want.iter().zip(&got) {
        assert_eq!(wname, gname);
        assert_eq!(wbytes, gbytes, "{wname}: merged differs from unsharded");
    }
    assert_eq!(want.len(), got.len());

    // Refusal modes, all exit 1 with the problem named:
    // a missing shard...
    let out_dir = tmp_dir("shard-merge-missing");
    let out = compstat(&[
        "merge",
        shard_dirs[0].to_str().unwrap(),
        shard_dirs[2].to_str().unwrap(),
        "--out",
        out_dir.to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(1));
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("2/3"),
        "missing-shard error must name 2/3: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    // ...the same shard twice...
    let dup = tmp_dir("shard-1-again");
    copy_dir(&shard_dirs[0], &dup);
    let out = compstat(&[
        "merge",
        shard_dirs[0].to_str().unwrap(),
        dup.to_str().unwrap(),
        shard_dirs[1].to_str().unwrap(),
        shard_dirs[2].to_str().unwrap(),
        "--out",
        tmp_dir("shard-merge-dup").to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(1));
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("1/3"),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    // ...an unstamped input directory...
    let out = compstat(&[
        "merge",
        unsharded.to_str().unwrap(),
        "--out",
        tmp_dir("shard-merge-unstamped").to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(1));
    // ...and a non-empty --out (merge never clobbers).
    let out = compstat(&[
        "merge",
        shard_dirs[0].to_str().unwrap(),
        shard_dirs[1].to_str().unwrap(),
        shard_dirs[2].to_str().unwrap(),
        "--out",
        merged.to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(1));

    // Usage errors exit 2.
    for args in [
        &["merge", "--out", "somewhere"][..],
        &["merge", "some-dir"],
        &["merge", "some-dir", "--out"],
    ] {
        let out = compstat(args);
        assert_eq!(out.status.code(), Some(2), "args {args:?}");
    }
}

#[test]
fn cache_export_import_round_trip_makes_a_fresh_machine_warm() {
    // Portability story: machine A runs cold and exports its cache;
    // machine B imports the tar and re-runs warm, without computing a
    // single oracle value.
    let machine_a = tmp_dir("cache-export-a");
    let machine_b = tmp_dir("cache-import-b");
    let env_a: Vec<(&str, &str)> = vec![("COMPSTAT_CACHE_DIR", machine_a.to_str().unwrap())];
    let env_b: Vec<(&str, &str)> = vec![("COMPSTAT_CACHE_DIR", machine_b.to_str().unwrap())];

    let out_a = tmp_dir("cache-export-reports-a");
    let cold = compstat_env(
        &[
            "run",
            "fig09",
            "--scale",
            "quick",
            "--out",
            out_a.to_str().unwrap(),
        ],
        &env_a,
    );
    assert!(cold.status.success());
    assert!(
        String::from_utf8_lossy(&cold.stderr).contains("1 miss(es)"),
        "{}",
        String::from_utf8_lossy(&cold.stderr)
    );

    let tar = Path::new(env!("CARGO_TARGET_TMPDIR")).join("oracle-cache.tar");
    let _ = std::fs::remove_file(&tar);
    let out = compstat_env(&["cache", "export", tar.to_str().unwrap()], &env_a);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(
        String::from_utf8(out.stdout)
            .unwrap()
            .contains("exported 1 entry"),
        "export summary"
    );

    let out = compstat_env(&["cache", "import", tar.to_str().unwrap()], &env_b);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("1 new, 0 already present"), "{text}");
    // Importing again is a no-op, not an error.
    let out = compstat_env(&["cache", "import", tar.to_str().unwrap()], &env_b);
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("0 new, 1 already present"), "{text}");

    // Machine B runs entirely warm and emits identical bytes.
    let out_b = tmp_dir("cache-import-reports-b");
    let warm = compstat_env(
        &[
            "run",
            "fig09",
            "--scale",
            "quick",
            "--out",
            out_b.to_str().unwrap(),
        ],
        &env_b,
    );
    assert!(warm.status.success());
    assert!(
        String::from_utf8_lossy(&warm.stderr).contains("1 hit(s), 0 miss(es)"),
        "imported cache must serve the sweep: {}",
        String::from_utf8_lossy(&warm.stderr)
    );
    assert_eq!(
        std::fs::read(out_a.join("fig09.json")).unwrap(),
        std::fs::read(out_b.join("fig09.json")).unwrap()
    );
    let stats = compstat_env(&["cache", "stats"], &env_b);
    assert!(String::from_utf8(stats.stdout)
        .unwrap()
        .contains("last run: 1 hit(s), 0 miss(es)"));

    // A corrupted tar is rejected wholesale: exit 1, cache untouched.
    // Flipping the first header byte guarantees a checksum mismatch.
    let mut bytes = std::fs::read(&tar).unwrap();
    bytes[0] ^= 0xFF;
    let bad_tar = Path::new(env!("CARGO_TARGET_TMPDIR")).join("oracle-cache-corrupt.tar");
    std::fs::write(&bad_tar, &bytes).unwrap();
    let machine_c = tmp_dir("cache-import-c");
    let env_c: Vec<(&str, &str)> = vec![("COMPSTAT_CACHE_DIR", machine_c.to_str().unwrap())];
    let out = compstat_env(&["cache", "import", bad_tar.to_str().unwrap()], &env_c);
    assert_eq!(out.status.code(), Some(1));
    assert!(
        !machine_c.exists() || std::fs::read_dir(&machine_c).unwrap().count() == 0,
        "rejected import must write nothing"
    );
    // Missing tar file is also exit 1.
    let out = compstat_env(&["cache", "import", "/nonexistent/nope.tar"], &env_c);
    assert_eq!(out.status.code(), Some(1));
}

#[test]
fn bench_emits_validating_documents_and_stays_out_of_report_dirs() {
    // One quick bench run: prints human tables, writes one
    // compstat-bench/v1 document per suite (and no index.json, so the
    // directory can never be mistaken for a report directory).
    let dir = tmp_dir("bench-docs");
    let out = compstat(&[
        "bench",
        "--quick",
        "--threads",
        "2",
        "--out",
        dir.to_str().unwrap(),
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("non-deterministic"), "{text}");
    assert!(text.contains("bigfloat/div/256"), "{text}");
    assert!(text.contains("bigfloat/div-restoring/256"), "{text}");
    assert!(text.contains("hdr/add/53"), "{text}");
    assert!(text.contains("hdr/forward/53"), "{text}");
    assert!(text.contains("oracle/forward/256"), "{text}");
    assert!(text.contains("oracle/fig09-fig11"), "{text}");
    assert!(text.contains("oracle/fig10"), "{text}");

    let mut files: Vec<String> = std::fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().file_name().into_string().unwrap())
        .collect();
    files.sort();
    assert_eq!(
        files,
        ["bench-bigfloat.json", "bench-hdr.json", "bench-oracle.json"]
    );

    // All documents parse, carry the schema + marker, and pass the
    // validate subcommand.
    for file in &files {
        let doc = Json::parse(&std::fs::read_to_string(dir.join(file)).unwrap()).unwrap();
        assert_eq!(
            doc.get("schema").unwrap().as_str(),
            Some("compstat-bench/v1"),
            "{file}"
        );
        assert_eq!(doc.get("non_deterministic"), Some(&Json::Bool(true)));
    }
    let out = compstat(&["validate", dir.to_str().unwrap()]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8(out.stdout)
        .unwrap()
        .contains("3 document(s) valid"));

    // A --out pointing at a report directory (holds index.json) is
    // refused before any timing runs, exit 2.
    let reports = tmp_dir("bench-refused");
    std::fs::create_dir_all(&reports).unwrap();
    std::fs::write(reports.join("index.json"), "{}").unwrap();
    let out = compstat(&["bench", "--quick", "--out", reports.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(2));
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("index.json"),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    // Usage errors exit 2.
    for args in [
        &["bench", "fig01"][..],
        &["bench", "--scale", "warp"],
        &["bench", "--out"],
    ] {
        let out = compstat(args);
        assert_eq!(out.status.code(), Some(2), "args {args:?}");
    }
}

#[test]
fn single_report_matches_the_library_run() {
    // The binary's emitted JSON is exactly what the library produces:
    // no CLI-layer drift in the report pipeline.
    let dir = tmp_dir("reports-one");
    let out = compstat(&[
        "run",
        "fig01",
        "--scale",
        "quick",
        "--threads",
        "2",
        "--out",
        dir.to_str().unwrap(),
    ]);
    assert!(out.status.success());
    let from_cli = std::fs::read_to_string(dir.join("fig01.json")).unwrap();
    let from_lib = compstat_bench::find("fig01")
        .unwrap()
        .run(
            &compstat_runtime::Runtime::serial(),
            compstat_core::Scale::Quick,
        )
        .to_json_string();
    assert_eq!(from_cli, from_lib);
}

#[test]
fn broken_pipe_exits_zero_instead_of_panicking() {
    use std::process::Stdio;
    // `compstat run ... | head -0`: the reader closes the pipe before
    // the report is printed. The binary must treat EPIPE as a normal
    // end of output — exit 0, no panic backtrace, no SIGPIPE death.
    for args in [&["run", "tab01", "--scale", "quick"][..], &["help"][..]] {
        let mut child = compstat_command(args)
            .stdout(Stdio::piped())
            .stderr(Stdio::piped())
            .spawn()
            .expect("spawn");
        // Dropping the handle closes the read end of the pipe, so the
        // child's first write after this point fails with EPIPE.
        drop(child.stdout.take());
        let status = child.wait().expect("wait");
        let mut stderr = String::new();
        use std::io::Read as _;
        child
            .stderr
            .take()
            .unwrap()
            .read_to_string(&mut stderr)
            .unwrap();
        assert_eq!(
            status.code(),
            Some(0),
            "args {args:?}: expected clean exit on broken pipe, got {status:?}\nstderr: {stderr}"
        );
        assert!(
            !stderr.contains("panicked"),
            "args {args:?}: broken pipe must not panic:\n{stderr}"
        );
    }
}

#[test]
fn serve_bench_writes_a_validating_document() {
    let dir = tmp_dir("serve-bench-out");
    let out = compstat(&[
        "serve",
        "--bench",
        "--connections",
        "2",
        "--requests",
        "5",
        "--out",
        dir.to_str().unwrap(),
    ]);
    assert!(
        out.status.success(),
        "bench failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    // The text rendering goes to stdout and mentions the totals.
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("10"), "10 total requests in:\n{text}");

    // The emitted document round-trips through the same validator the
    // `validate` subcommand applies to every schema it knows.
    let doc_text = std::fs::read_to_string(dir.join("bench-serve.json")).unwrap();
    let doc = Json::parse(&doc_text).expect("valid JSON");
    assert_eq!(
        doc.get("schema").and_then(Json::as_str),
        Some("compstat-serve-bench/v1")
    );
    assert!(matches!(
        doc.get("non_deterministic"),
        Some(Json::Bool(true))
    ));
    let validate = compstat(&["validate", dir.to_str().unwrap()]);
    assert!(
        validate.status.success(),
        "validate rejected bench-serve.json: {}",
        String::from_utf8_lossy(&validate.stdout)
    );
}

#[test]
fn serve_refuses_to_write_bench_docs_into_a_report_directory() {
    let dir = tmp_dir("serve-bench-guard");
    std::fs::create_dir_all(&dir).unwrap();
    std::fs::write(dir.join("index.json"), "{}").unwrap();
    let out = compstat(&[
        "serve",
        "--bench",
        "--connections",
        "1",
        "--requests",
        "1",
        "--out",
        dir.to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("refusing"));
}

#[test]
fn serve_send_replies_match_the_offline_baseline() {
    use std::io::{BufRead as _, BufReader};
    use std::process::Stdio;

    // A small script covering the control verb and both scoring verbs.
    let script = concat!(
        r#"{"schema":"compstat-serve/v1","id":"c0","verb":"ping"}"#,
        "\n",
        r#"{"schema":"compstat-serve/v1","id":"c1","verb":"pbd/call_columns","format":"Log","prec":128,"columns":[{"probs":[0.25,0.125,0.0625,0.5],"k":2}]}"#,
        "\n",
        r#"{"schema":"compstat-serve/v1","id":"c2","verb":"hmm/forward_batch","format":"binary64","prec":128,"model":{"states":2,"symbols":2,"a":[0.7,0.3,0.4,0.6],"b":[0.9,0.1,0.2,0.8],"pi":[0.5,0.5]},"sequences":[[0,1,1,0]]}"#,
        "\n",
    );
    let dir = tmp_dir("serve-send");
    std::fs::create_dir_all(&dir).unwrap();
    let script_path = dir.join("script.ndjson");
    std::fs::write(&script_path, script).unwrap();

    // Foreground server on a free port; the resolved address is the
    // first stdout line.
    let mut server = compstat_command(&["serve", "--workers", "2"])
        .stdout(Stdio::piped())
        .spawn()
        .expect("spawn server");
    let mut addr_line = String::new();
    BufReader::new(server.stdout.take().unwrap())
        .read_line(&mut addr_line)
        .expect("read address line");
    let addr = addr_line
        .trim()
        .strip_prefix("listening on ")
        .unwrap_or_else(|| panic!("unexpected banner: {addr_line:?}"))
        .to_string();

    let sent = compstat(&[
        "serve",
        "--send",
        script_path.to_str().unwrap(),
        "--addr",
        &addr,
    ]);
    server.kill().ok();
    server.wait().ok();
    assert!(
        sent.status.success(),
        "send failed: {}",
        String::from_utf8_lossy(&sent.stderr)
    );

    let offline = compstat(&["serve", "--offline", script_path.to_str().unwrap()]);
    assert!(offline.status.success());
    assert_eq!(
        String::from_utf8(sent.stdout).unwrap(),
        String::from_utf8(offline.stdout).unwrap(),
        "served replies must be byte-identical to the offline baseline"
    );
}

// ---------------------------------------------------------------------
// audit
// ---------------------------------------------------------------------

fn fixture_path(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../analysis/tests/fixtures")
        .join(name)
}

#[test]
fn audit_is_clean_at_head() {
    // The workspace root is two levels above the cli crate.
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let out = compstat(&["audit", "--root", root.to_str().unwrap()]);
    assert!(
        out.status.success(),
        "audit found violations:\n{}{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("0 finding(s)"), "{text}");
}

#[test]
fn audit_findings_exit_2_with_exact_location() {
    let fixture = fixture_path("powf_exp2.rs");
    let out = compstat(&["audit", fixture.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(2));
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(
        text.contains("powf_exp2.rs:5:10: [powf-exp2]"),
        "expected exact file:line finding in:\n{text}"
    );
}

#[test]
fn audit_json_document_validates() {
    let fixture = fixture_path("lossy_cast.rs");
    let doc_path = tmp_dir("audit-doc").join("audit.json");
    std::fs::create_dir_all(doc_path.parent().unwrap()).unwrap();
    let out = compstat(&[
        "audit",
        "--json",
        "--out",
        doc_path.to_str().unwrap(),
        fixture.to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(2));
    // stdout and --out carry the same compstat-audit/v1 document.
    let stdout_text = String::from_utf8(out.stdout).unwrap();
    let file_text = std::fs::read_to_string(&doc_path).unwrap();
    assert_eq!(stdout_text, file_text);
    let doc = Json::parse(&file_text).expect("well-formed JSON");
    assert_eq!(
        doc.get("schema").and_then(Json::as_str),
        Some("compstat-audit/v1")
    );
    // The emitted document passes `compstat validate`.
    let validated = compstat(&["validate", doc_path.to_str().unwrap()]);
    assert!(
        validated.status.success(),
        "{}",
        String::from_utf8_lossy(&validated.stderr)
    );
}

#[test]
fn audit_usage_errors_exit_3() {
    for args in [
        &["audit", "--bogus"][..],
        &["audit", "--out"],
        &["audit", "no-such-file.rs"],
        &["audit", "--regen-fingerprints", "some-path.rs"],
    ] {
        let out = compstat(args);
        assert_eq!(out.status.code(), Some(3), "args {args:?}");
    }
}

#[test]
fn audit_catches_kernel_edit_without_tag_bump_end_to_end() {
    // Build a throwaway mini-workspace: one tagged kernel, fingerprints
    // recorded, then a code edit without a tag bump.
    let root = tmp_dir("audit-tag-guard");
    let src = root.join("crates/demo/src");
    std::fs::create_dir_all(&src).unwrap();
    std::fs::create_dir_all(root.join("goldens")).unwrap();
    let kernel =
        "pub const ORACLE_KERNEL_TAG: &str = \"demo/v1\";\npub fn k(x: u64) -> u64 { x + 1 }\n";
    std::fs::write(src.join("kernel.rs"), kernel).unwrap();

    let regen = compstat(&[
        "audit",
        "--regen-fingerprints",
        "--root",
        root.to_str().unwrap(),
    ]);
    assert!(
        regen.status.success(),
        "{}",
        String::from_utf8_lossy(&regen.stderr)
    );
    assert!(root.join("goldens/kernel_fingerprints.json").is_file());

    std::fs::write(src.join("kernel.rs"), kernel.replace("x + 1", "x + 2")).unwrap();
    let out = compstat(&["audit", "--root", root.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(2));
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(
        text.contains("crates/demo/src/kernel.rs:1:1: [kernel-tag-guard]"),
        "{text}"
    );
    assert!(
        text.contains("ORACLE_KERNEL_TAG is still \"demo/v1\""),
        "{text}"
    );

    // The committed fingerprints file itself validates.
    let validated = compstat(&[
        "validate",
        root.join("goldens/kernel_fingerprints.json")
            .to_str()
            .unwrap(),
    ]);
    assert!(
        validated.status.success(),
        "{}",
        String::from_utf8_lossy(&validated.stderr)
    );
}

#[test]
fn validate_rejects_corrupt_fingerprints_with_every_reason() {
    let dir = tmp_dir("bad-fingerprints");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("kernel_fingerprints.json");
    std::fs::write(
        &path,
        r#"{"schema":"compstat-kernel-fingerprints/v1","entries":[
            {"path":"a.rs","tag":"t","sha256":"nothex"},
            {"path":"a.rs","tag":"t","sha256":"nothex"}
        ]}"#,
    )
    .unwrap();
    let out = compstat(&["validate", path.to_str().unwrap()]);
    assert!(!out.status.success());
    let err = String::from_utf8(out.stderr).unwrap();
    // Accumulate-all-errors: both the non-hex digests and the
    // duplicate path are reported in one pass.
    assert!(err.contains("not 64 hex digits"), "{err}");
    assert!(err.contains("duplicate"), "{err}");
}
