//! The `compstat` CLI: the unified experiment engine's front door.
//!
//! ```text
//! compstat list
//! compstat run <name>... | --all [--scale quick|default|paper]
//!              [--threads N] [--out DIR] [--shard K/N]
//! compstat merge <shard-dir>... --out DIR
//! compstat diff <baseline-dir> <new-dir> [--tolerances FILE] [--json]
//! compstat validate <dir-or-file>...
//! compstat audit [--json] [--out FILE] [--regen-fingerprints] [paths...]
//! cache stats | clear | export <tar> | import <tar>
//! ```
//!
//! `run` resolves experiments in the `compstat-bench` registry and runs
//! them at the requested scale on the requested thread budget. Without
//! `--out` the text reports print to stdout (what the bench targets
//! print); with `--out` one JSON document per experiment is written
//! plus an `index.json` summary. Reports contain only deterministic
//! data, so the emitted bytes are identical for every `--threads`
//! value — `diff -r` between a serial and a parallel output directory
//! is empty, and CI enforces exactly that.
//!
//! `run --shard K/N` takes the K-th round-robin slice of the registry
//! (and splits the big oracle sweeps into cached parts), writing a
//! shard-stamped `index.json`; `merge` reassembles a complete shard
//! set into the canonical directory an unsharded `run --all` would
//! have written, byte for byte. `cache export`/`cache import` move the
//! oracle store between machines as a deterministic ustar archive.
//!
//! `diff` compares two report directories cell by cell under a
//! [`TolerancePolicy`] and exits 0 (clean), 1 (changes, all within
//! tolerance), or 2 (violations); any usage or load error exits 3 so
//! the three verdict codes stay unambiguous.
//!
//! Argument parsing is hand-rolled: the build environment has no
//! registry access, so no `clap`.

use compstat_analysis::{fingerprint, run_audit, AuditOptions};
use compstat_bench::registry::{find, registry, registry_shard};
use compstat_bench::timing;
use compstat_core::archive::{export_cache, import_cache};
use compstat_core::bench_doc::BenchDoc;
use compstat_core::cache;
use compstat_core::diff::{diff_dirs, TolerancePolicy};
use compstat_core::json::Json;
use compstat_core::merge::{index_doc_for_reports, merge_shard_dirs};
use compstat_core::{Report, Scale, INDEX_SCHEMA};
use compstat_runtime::{CacheMode, Runtime, Shard};
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// Outcome of a stdout write ([`emit`]).
#[derive(Clone, Copy, PartialEq, Eq)]
enum Emit {
    /// Written in full.
    Ok,
    /// The reader closed the pipe (`compstat list | head`): stop
    /// writing and exit successfully — not an error, and `println!`
    /// would have panicked here.
    Closed,
    /// A real write failure (e.g. disk full behind a redirect): stop
    /// and exit nonzero, the output is incomplete.
    Failed,
}

/// Writes to stdout, distinguishing a closed pipe from a real failure.
fn emit(text: &str) -> Emit {
    use std::io::ErrorKind;
    let mut out = std::io::stdout().lock();
    match out.write_all(text.as_bytes()).and_then(|()| out.flush()) {
        Ok(()) => Emit::Ok,
        Err(e) if e.kind() == ErrorKind::BrokenPipe => Emit::Closed,
        Err(e) => {
            eprintln!("compstat: cannot write to stdout: {e}");
            Emit::Failed
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("list") => cmd_list(&args[1..]),
        Some("run") => cmd_run(&args[1..]),
        Some("bench") => cmd_bench(&args[1..]),
        Some("merge") => cmd_merge(&args[1..]),
        Some("diff") => cmd_diff(&args[1..]),
        Some("validate") => cmd_validate(&args[1..]),
        Some("audit") => cmd_audit(&args[1..]),
        Some("cache") => cmd_cache(&args[1..]),
        Some("serve") => cmd_serve(&args[1..]),
        Some("help" | "--help" | "-h") | None => {
            // Through emit(), not print!: `compstat help | head -1`
            // must exit 0, not panic on the broken pipe.
            match emit(USAGE) {
                Emit::Failed => ExitCode::FAILURE,
                _ => ExitCode::SUCCESS,
            }
        }
        Some(other) => {
            eprintln!("compstat: unknown command {other:?}\n");
            eprint!("{USAGE}");
            ExitCode::from(2)
        }
    }
}

const USAGE: &str = "\
compstat — run the paper's experiments through the unified engine

USAGE:
    compstat list
    compstat run <name>... | --all [--scale quick|default|paper]
                 [--threads N] [--out DIR] [--no-cache] [--shard K/N]
    compstat bench [--quick | --scale quick|default|paper]
                   [--threads N] [--out DIR]
    compstat merge <shard-dir>... --out DIR
    compstat diff <baseline-dir> <new-dir> [--tolerances FILE] [--json]
    compstat validate <dir-or-file>...
    compstat audit [--json] [--out FILE] [--root DIR]
                   [--regen-fingerprints] [paths...]
    compstat cache stats | clear | export <tar> | import <tar>
    compstat serve [--addr H:P] [--workers N] [--threads N]
                   [--max-conns N] [--timeout-secs S] [--no-cache]
    compstat serve --bench [--connections N] [--requests M]
                   [--addr H:P] [--out DIR]
    compstat serve --send FILE --addr H:P | --offline FILE
    compstat help

COMMANDS:
    list        List every registered experiment (name and title)
    run         Run experiments; print text reports, or write one JSON
                report per experiment plus index.json with --out
    bench       Time the bigfloat kernels (add/mul/div at 128/256/1024
                bits, plus the retired restoring division), the HDR
                fast tier against the 256-bit path (per-op and forward
                sweep), and the figures' 256-bit oracle passes. Emits
                wall-clock compstat-bench/v1 documents — explicitly
                non-deterministic, never part of a report directory,
                never compared by `diff`
    merge       Reassemble a complete set of `run --shard` output
                directories into the canonical directory an unsharded
                `run --all` would write (byte-identical); exit 0 on
                success, 1 on overlap/missing/inconsistent shards, 2 on
                usage errors
    diff        Compare two report directories cell by cell; exit 0 if
                identical, 1 if all changes are within tolerance, 2 on
                violations or added/removed experiments, 3 on errors
    validate    Parse every .json report under the given paths; report
                every malformed document with its reason
    audit       Statically analyze the workspace's own sources for
                determinism/precision invariant violations
                (nondeterminism, float-format, powf-exp2, lossy-cast,
                panic-in-serve, suppression, kernel-tag-guard); exit 0
                if clean, 2 on findings, 3 on usage/IO errors. Inline
                waivers (`// compstat-audit: allow(<rule>): <reason>`)
                require a reason and stay visible in the output
    cache       Inspect (`stats`), empty (`clear`), or move the
                persistent oracle cache ($COMPSTAT_CACHE_DIR, default
                .compstat-cache/) between machines as a deterministic
                ustar archive (`export <tar>` / `import <tar>`)
    serve       Run the batched scoring service: newline-delimited
                compstat-serve/v1 JSON frames over TCP (pbd
                call_columns + hmm forward_batch, ping/stats control
                verbs), scored on the deterministic runtime with the
                oracle cache as shared warm state. Served replies are
                byte-identical to the direct computation at any worker
                count. `--bench` drives a built-in load generator and
                reports a compstat-serve-bench/v1 latency document;
                `--send FILE` plays scripted frames against a live
                server; `--offline FILE` answers the same frames
                without a network (the differential baseline)

OPTIONS (run):
    --all           Run every registered experiment, in registry order
    --scale SCALE   quick | default | paper (default: $COMPSTAT_SCALE
                    or `default`; `paper` = full paper-scale counts)
    --threads N     Worker threads (default: $COMPSTAT_THREADS or all
                    cores; emitted bytes are identical for every N)
    --out DIR       Write JSON reports to DIR instead of printing text
    --no-cache      Recompute every oracle sweep, bypassing the cache
                    (reports are byte-identical either way; also
                    available as COMPSTAT_CACHE=off)
    --shard K/N     Run shard K of an N-way round-robin partition of
                    the registry (requires --all; big oracle sweeps are
                    cached in N parts). The index.json is shard-stamped
                    so `compstat merge` can reassemble the full set

OPTIONS (bench):
    --quick         Shorthand for --scale quick (the CI smoke budget)
    --scale SCALE   quick | default | paper (default: $COMPSTAT_SCALE
                    or `default`)
    --threads N     Worker threads for the hdr forward rows and the
                    oracle suite (the kernel micro-benchmarks are
                    always serial)
    --out DIR       Also write bench-bigfloat.json, bench-hdr.json and
                    bench-oracle.json to DIR. Refused if DIR holds an
                    index.json — bench documents must not contaminate a
                    report directory

OPTIONS (diff):
    --tolerances F  Load a compstat-tolerances/v1 JSON policy file
                    (default: every value must be byte-identical)
    --json          Emit the structured compstat-diff/v1 document
                    instead of the human-readable summary

OPTIONS (audit):
    --json          Print the structured compstat-audit/v1 document
                    instead of the human-readable findings
    --out FILE      Also write the compstat-audit/v1 JSON document to
                    FILE (the CI artifact)
    --root DIR      Workspace root (default: the enclosing workspace of
                    the current directory)
    --regen-fingerprints  Rewrite goldens/kernel_fingerprints.json from
                    the current tree before auditing — the second step
                    of the kernel-edit workflow (edit kernel, bump
                    ORACLE_KERNEL_TAG, regen, commit both)
    [paths...]      Audit only these files/directories (every token
                    rule applies; the whole-tree kernel-tag-guard is
                    skipped). Default: src/lib.rs and every
                    crates/*/src tree except crates/vendor

OPTIONS (serve):
    --addr H:P      Bind address (default 127.0.0.1:0 — a free port,
                    printed as `listening on H:P`). With --bench or
                    --send: the server to drive instead
    --workers N     Connection-handling worker threads (default 4)
    --threads N     Deterministic runtime threads per request
                    (default 1; replies are byte-identical for any N)
    --max-conns N   Connections queued/in-flight before new ones get
                    a busy frame (default 64)
    --timeout-secs S  Per-connection read timeout (default 10)
    --no-cache      Score without the persistent oracle cache
    --bench         Load-generate against --addr (or an in-process
                    server) and print a compstat-serve-bench/v1
                    latency/throughput document
    --connections N / --requests M  Bench shape (default 4 x 25)
    --out DIR       With --bench: also write bench-serve.json to DIR
                    (refused if DIR holds an index.json)
    --send FILE     Send FILE's newline-delimited frames to --addr,
                    print one reply line each
    --offline FILE  Answer FILE's frames directly, no network — the
                    baseline `--send` output is diffed against in CI
";

fn cmd_list(rest: &[String]) -> ExitCode {
    if !rest.is_empty() {
        eprintln!("compstat list takes no arguments");
        return ExitCode::from(2);
    }
    let width = registry().iter().map(|e| e.name().len()).max().unwrap_or(0);
    for e in registry() {
        match emit(&format!("{:width$}  {}\n", e.name(), e.title())) {
            Emit::Ok => {}
            Emit::Closed => break,
            Emit::Failed => return ExitCode::FAILURE,
        }
    }
    ExitCode::SUCCESS
}

struct RunArgs {
    names: Vec<String>,
    all: bool,
    scale: Scale,
    threads: Option<usize>,
    out: Option<PathBuf>,
    no_cache: bool,
    shard: Option<Shard>,
}

fn parse_run_args(rest: &[String]) -> Result<RunArgs, String> {
    let mut parsed = RunArgs {
        names: Vec::new(),
        all: false,
        scale: Scale::from_env(),
        threads: None,
        out: None,
        no_cache: false,
        shard: None,
    };
    let mut it = rest.iter();
    while let Some(arg) = it.next() {
        let mut value_of = |flag: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{flag} needs a value"))
        };
        match arg.as_str() {
            "--all" => parsed.all = true,
            "--no-cache" => parsed.no_cache = true,
            "--scale" => {
                let v = value_of("--scale")?;
                parsed.scale = Scale::parse(&v)
                    .ok_or_else(|| format!("unknown scale {v:?} (quick|default|paper)"))?;
            }
            "--threads" => {
                let v = value_of("--threads")?;
                let n: usize = v
                    .parse()
                    .map_err(|_| format!("--threads needs a number, got {v:?}"))?;
                // Same cap as COMPSTAT_THREADS: a count this large is
                // always a unit mix-up, not a real thread budget.
                if n > compstat_runtime::MAX_THREADS {
                    return Err(format!(
                        "--threads {n} exceeds the {}-thread cap",
                        compstat_runtime::MAX_THREADS
                    ));
                }
                parsed.threads = Some(n);
            }
            "--out" => parsed.out = Some(PathBuf::from(value_of("--out")?)),
            "--shard" => {
                let v = value_of("--shard")?;
                // Same contract as the COMPSTAT_THREADS misparse
                // handling: a bad value is a usage error naming it.
                parsed.shard = Some(Shard::parse(&v).map_err(|e| e.to_string())?);
            }
            flag if flag.starts_with('-') => return Err(format!("unknown flag {flag:?}")),
            name => parsed.names.push(name.to_string()),
        }
    }
    if parsed.all && !parsed.names.is_empty() {
        return Err("pass either experiment names or --all, not both".into());
    }
    if parsed.shard.is_some() && !parsed.names.is_empty() {
        return Err("--shard partitions the whole registry deterministically; \
             pass --all, not experiment names"
            .into());
    }
    if !parsed.all && parsed.names.is_empty() {
        return Err("nothing to run: pass experiment names or --all".into());
    }
    Ok(parsed)
}

fn cmd_run(rest: &[String]) -> ExitCode {
    let parsed = match parse_run_args(rest) {
        Ok(p) => p,
        Err(msg) => {
            eprintln!("compstat run: {msg}");
            return ExitCode::from(2);
        }
    };

    let experiments: Vec<&dyn compstat_core::Experiment> = if let Some(shard) = parsed.shard {
        registry_shard(shard)
    } else if parsed.all {
        registry().to_vec()
    } else {
        let mut selected = Vec::new();
        for name in &parsed.names {
            match find(name) {
                Some(e) => selected.push(e),
                None => {
                    eprintln!("compstat run: unknown experiment {name:?} (see `compstat list`)");
                    return ExitCode::from(2);
                }
            }
        }
        selected
    };

    let rt = match parsed.threads {
        Some(n) => Runtime::with_threads(n),
        // Unlike library callers (which warn and fall back), the CLI
        // treats a bad COMPSTAT_THREADS as the usage error it is.
        None => match Runtime::try_from_env() {
            Ok(rt) => rt,
            Err(e) => {
                eprintln!("compstat run: {e}");
                return ExitCode::from(2);
            }
        },
    };
    // `compstat run` caches oracle sweeps by default; `--no-cache` (or
    // COMPSTAT_CACHE=off) forces recomputation. Reports are
    // byte-identical either way — that is the gate CI enforces.
    let cache_mode = if parsed.no_cache {
        CacheMode::Off
    } else {
        CacheMode::from_env_or(CacheMode::ReadWrite)
    };
    let mut rt = rt.with_cache_mode(cache_mode);
    if let Some(shard) = parsed.shard {
        // The runtime carries the shard so the big oracle sweeps split
        // their work items (and cache entries) the same N ways.
        rt = rt.with_shard(shard);
    }
    let rt = rt;
    let stats_before = cache::global_stats();

    if let Some(dir) = &parsed.out {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("compstat run: cannot create {}: {e}", dir.display());
            return ExitCode::FAILURE;
        }
    }

    let mut reports: Vec<Report> = Vec::new();
    for e in &experiments {
        eprintln!("running {} ({} threads)...", e.name(), rt.threads());
        let report = e.run(&rt, parsed.scale);
        match &parsed.out {
            Some(dir) => {
                // Temp-file + rename: an interrupted run leaves no
                // truncated report for `load_report_dir` to choke on.
                let path = dir.join(format!("{}.json", report.name));
                if let Err(err) = cache::write_atomic(&path, report.to_json_string().as_bytes()) {
                    eprintln!("compstat run: cannot write {}: {err}", path.display());
                    return ExitCode::FAILURE;
                }
                eprintln!("wrote {}", path.display());
            }
            None => {
                let banner = "=".repeat(64);
                match emit(&format!(
                    "\n{banner}\n{}\n{banner}\n{}\n",
                    e.title(),
                    report.render_text()
                )) {
                    Emit::Ok => {}
                    Emit::Closed => return ExitCode::SUCCESS,
                    Emit::Failed => return ExitCode::FAILURE,
                }
            }
        }
        reports.push(report);
    }

    if let Some(dir) = &parsed.out {
        // index.json is written last (and atomically): its presence
        // marks a complete report directory, so a half-written run can
        // never half-load.
        let index = index_doc_for_reports(parsed.scale, parsed.shard, &reports);
        let path = dir.join("index.json");
        let mut bytes = index.to_json_string();
        bytes.push('\n');
        if let Err(err) = cache::write_atomic(&path, bytes.as_bytes()) {
            eprintln!("compstat run: cannot write {}: {err}", path.display());
            return ExitCode::FAILURE;
        }
        eprintln!(
            "wrote {} ({} report{})",
            path.display(),
            reports.len(),
            if reports.len() == 1 { "" } else { "s" }
        );
    }

    if cache_mode != CacheMode::Off {
        let after = cache::global_stats();
        let run = cache::CacheStats {
            hits: after.hits - stats_before.hits,
            misses: after.misses - stats_before.misses,
            writes: after.writes - stats_before.writes,
            errors: after.errors - stats_before.errors,
        };
        let dir = cache::default_dir();
        // A run of cache-free experiments should not create the cache
        // directory just to record zeros.
        if run != cache::CacheStats::default() || dir.is_dir() {
            eprintln!(
                "oracle cache: {} hit(s), {} miss(es), {} write(s), {} error(s) in {}",
                run.hits,
                run.misses,
                run.writes,
                run.errors,
                dir.display()
            );
            if let Err(e) = cache::record_run_stats(&dir, &run) {
                eprintln!(
                    "compstat run: warning: cannot update {}: {e}",
                    dir.join("stats.json").display()
                );
            }
        }
    }
    ExitCode::SUCCESS
}

struct BenchArgs {
    scale: Scale,
    threads: Option<usize>,
    out: Option<PathBuf>,
}

fn parse_bench_args(rest: &[String]) -> Result<BenchArgs, String> {
    let mut parsed = BenchArgs {
        scale: Scale::from_env(),
        threads: None,
        out: None,
    };
    let mut it = rest.iter();
    while let Some(arg) = it.next() {
        let mut value_of = |flag: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{flag} needs a value"))
        };
        match arg.as_str() {
            "--quick" => parsed.scale = Scale::Quick,
            "--scale" => {
                let v = value_of("--scale")?;
                parsed.scale = Scale::parse(&v)
                    .ok_or_else(|| format!("unknown scale {v:?} (quick|default|paper)"))?;
            }
            "--threads" => {
                let v = value_of("--threads")?;
                let n: usize = v
                    .parse()
                    .map_err(|_| format!("--threads needs a number, got {v:?}"))?;
                if n > compstat_runtime::MAX_THREADS {
                    return Err(format!(
                        "--threads {n} exceeds the {}-thread cap",
                        compstat_runtime::MAX_THREADS
                    ));
                }
                parsed.threads = Some(n);
            }
            "--out" => parsed.out = Some(PathBuf::from(value_of("--out")?)),
            flag if flag.starts_with('-') => return Err(format!("unknown flag {flag:?}")),
            other => {
                return Err(format!(
                    "bench takes no positional arguments, got {other:?}"
                ))
            }
        }
    }
    Ok(parsed)
}

fn cmd_bench(rest: &[String]) -> ExitCode {
    let parsed = match parse_bench_args(rest) {
        Ok(p) => p,
        Err(msg) => {
            eprintln!("compstat bench: {msg}");
            return ExitCode::from(2);
        }
    };
    // Check the output directory *before* paying for the suites — and
    // refuse a report directory outright: the diff gate loads every
    // .json under an indexed directory, and wall-clock documents in it
    // would defeat the byte-stability contract.
    if let Some(dir) = &parsed.out {
        if dir.join("index.json").exists() {
            eprintln!(
                "compstat bench: {} holds an index.json (a report directory); \
                 bench documents are non-deterministic and must live elsewhere",
                dir.display()
            );
            return ExitCode::from(2);
        }
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("compstat bench: cannot create {}: {e}", dir.display());
            return ExitCode::FAILURE;
        }
    }
    let rt = match parsed.threads {
        Some(n) => Runtime::with_threads(n),
        None => match Runtime::try_from_env() {
            Ok(rt) => rt,
            Err(e) => {
                eprintln!("compstat bench: {e}");
                return ExitCode::from(2);
            }
        },
    };

    eprintln!(
        "timing bigfloat kernels at scale {}...",
        parsed.scale.as_str()
    );
    let bigfloat = timing::bigfloat_suite(parsed.scale);
    eprintln!(
        "timing the hdr tier vs the 256-bit path at scale {} ({} threads, cache off)...",
        parsed.scale.as_str(),
        rt.threads()
    );
    let hdr = timing::hdr_suite(parsed.scale, &rt);
    eprintln!(
        "timing oracle passes at scale {} ({} threads, cache off)...",
        parsed.scale.as_str(),
        rt.threads()
    );
    let oracle = timing::oracle_suite(parsed.scale, &rt);

    for doc in [&bigfloat, &hdr, &oracle] {
        match emit(&format!("\n{}", doc.render_text())) {
            Emit::Ok => {}
            Emit::Closed => return ExitCode::SUCCESS,
            Emit::Failed => return ExitCode::FAILURE,
        }
        if let Some(dir) = &parsed.out {
            let path = dir.join(format!("bench-{}.json", doc.suite));
            if let Err(e) = cache::write_atomic(&path, doc.to_json_string().as_bytes()) {
                eprintln!("compstat bench: cannot write {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
            eprintln!("wrote {}", path.display());
        }
    }
    ExitCode::SUCCESS
}

struct MergeArgs {
    dirs: Vec<PathBuf>,
    out: PathBuf,
}

fn parse_merge_args(rest: &[String]) -> Result<MergeArgs, String> {
    let mut dirs: Vec<PathBuf> = Vec::new();
    let mut out: Option<PathBuf> = None;
    let mut it = rest.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--out" => match it.next() {
                Some(v) => out = Some(PathBuf::from(v)),
                None => return Err("--out needs a directory".into()),
            },
            flag if flag.starts_with('-') => return Err(format!("unknown flag {flag:?}")),
            dir => dirs.push(PathBuf::from(dir)),
        }
    }
    if dirs.is_empty() {
        return Err("pass at least one shard report directory".into());
    }
    let Some(out) = out else {
        return Err("--out DIR is required (merge never writes in place)".into());
    };
    Ok(MergeArgs { dirs, out })
}

fn cmd_merge(rest: &[String]) -> ExitCode {
    let parsed = match parse_merge_args(rest) {
        Ok(p) => p,
        Err(msg) => {
            eprintln!("compstat merge: {msg}");
            return ExitCode::from(2);
        }
    };
    match merge_shard_dirs(&parsed.dirs, &parsed.out) {
        Ok(summary) => {
            match emit(&format!(
                "merged {} shard(s), {} experiment(s) at scale {} into {}\n",
                summary.shards,
                summary.experiments,
                summary.scale,
                parsed.out.display()
            )) {
                Emit::Failed => ExitCode::FAILURE,
                _ => ExitCode::SUCCESS,
            }
        }
        Err(e) => {
            eprintln!("compstat merge: {e}");
            ExitCode::FAILURE
        }
    }
}

struct DiffArgs {
    baseline: PathBuf,
    new: PathBuf,
    tolerances: Option<PathBuf>,
    json: bool,
}

fn parse_diff_args(rest: &[String]) -> Result<DiffArgs, String> {
    let mut dirs: Vec<PathBuf> = Vec::new();
    let mut tolerances = None;
    let mut json = false;
    let mut it = rest.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--tolerances" => match it.next() {
                Some(v) => tolerances = Some(PathBuf::from(v)),
                None => return Err("--tolerances needs a file".into()),
            },
            flag if flag.starts_with('-') => return Err(format!("unknown flag {flag:?}")),
            dir => dirs.push(PathBuf::from(dir)),
        }
    }
    match <[PathBuf; 2]>::try_from(dirs) {
        Ok([baseline, new]) => Ok(DiffArgs {
            baseline,
            new,
            tolerances,
            json,
        }),
        Err(_) => Err("pass exactly two report directories: <baseline-dir> <new-dir>".into()),
    }
}

/// Exit code for `diff` usage and load errors, distinct from the
/// 0/1/2 verdict codes.
const DIFF_TROUBLE: u8 = 3;

fn cmd_diff(rest: &[String]) -> ExitCode {
    let parsed = match parse_diff_args(rest) {
        Ok(p) => p,
        Err(msg) => {
            eprintln!("compstat diff: {msg}");
            return ExitCode::from(DIFF_TROUBLE);
        }
    };
    let policy = match &parsed.tolerances {
        Some(path) => match TolerancePolicy::load(path) {
            Ok(p) => p,
            Err(e) => {
                eprintln!("compstat diff: {e}");
                return ExitCode::from(DIFF_TROUBLE);
            }
        },
        None => TolerancePolicy::exact(),
    };
    let report = match diff_dirs(&parsed.baseline, &parsed.new, &policy) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("compstat diff: {e}");
            return ExitCode::from(DIFF_TROUBLE);
        }
    };
    let rendered = if parsed.json {
        report.to_json_string()
    } else {
        report.render_text()
    };
    if emit(&rendered) == Emit::Failed {
        return ExitCode::from(DIFF_TROUBLE);
    }
    ExitCode::from(report.status().exit_code())
}

fn cmd_cache(rest: &[String]) -> ExitCode {
    match rest {
        [action] if action == "stats" => cmd_cache_stats(),
        [action] if action == "clear" => cmd_cache_clear(),
        [action, file] if action == "export" => cmd_cache_export(Path::new(file)),
        [action, file] if action == "import" => cmd_cache_import(Path::new(file)),
        _ => {
            eprintln!("compstat cache: pass `stats`, `clear`, `export <tar>`, or `import <tar>`");
            ExitCode::from(2)
        }
    }
}

fn cmd_cache_export(file: &Path) -> ExitCode {
    let dir = cache::default_dir();
    let (bytes, count) = match export_cache(&dir) {
        Ok(packed) => packed,
        Err(e) => {
            eprintln!("compstat cache: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Err(e) = cache::write_atomic(file, &bytes) {
        eprintln!("compstat cache: cannot write {}: {e}", file.display());
        return ExitCode::FAILURE;
    }
    match emit(&format!(
        "exported {count} entr{} from {} to {} ({} bytes)\n",
        if count == 1 { "y" } else { "ies" },
        dir.display(),
        file.display(),
        bytes.len()
    )) {
        Emit::Failed => ExitCode::FAILURE,
        _ => ExitCode::SUCCESS,
    }
}

fn cmd_cache_import(file: &Path) -> ExitCode {
    let bytes = match std::fs::read(file) {
        Ok(bytes) => bytes,
        Err(e) => {
            eprintln!("compstat cache: cannot read {}: {e}", file.display());
            return ExitCode::FAILURE;
        }
    };
    let dir = cache::default_dir();
    match import_cache(&dir, &bytes) {
        Ok(summary) => {
            match emit(&format!(
                "imported {} entr{} into {} ({} new, {} already present)\n",
                summary.total(),
                if summary.total() == 1 { "y" } else { "ies" },
                dir.display(),
                summary.added,
                summary.existing
            )) {
                Emit::Failed => ExitCode::FAILURE,
                _ => ExitCode::SUCCESS,
            }
        }
        Err(e) => {
            eprintln!("compstat cache: {}: {e}", file.display());
            ExitCode::FAILURE
        }
    }
}

// ---------------------------------------------------------------------
// serve
// ---------------------------------------------------------------------

struct ServeArgs {
    addr: Option<String>,
    workers: usize,
    threads: usize,
    max_conns: usize,
    timeout_secs: u64,
    no_cache: bool,
    bench: bool,
    connections: usize,
    requests: usize,
    out: Option<PathBuf>,
    send: Option<PathBuf>,
    offline: Option<PathBuf>,
}

fn parse_serve_args(rest: &[String]) -> Result<ServeArgs, String> {
    let mut args = ServeArgs {
        addr: None,
        workers: 4,
        threads: 1,
        max_conns: 64,
        timeout_secs: 10,
        no_cache: false,
        bench: false,
        connections: 4,
        requests: 25,
        out: None,
        send: None,
        offline: None,
    };
    let mut it = rest.iter();
    let value = |flag: &str, v: Option<&String>| -> Result<String, String> {
        v.cloned().ok_or_else(|| format!("{flag} needs a value"))
    };
    let number = |flag: &str, v: Option<&String>| -> Result<usize, String> {
        value(flag, v)?
            .parse::<usize>()
            .map_err(|_| format!("{flag} needs a number"))
    };
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--addr" => args.addr = Some(value("--addr", it.next())?),
            "--workers" => args.workers = number("--workers", it.next())?.max(1),
            "--threads" => args.threads = number("--threads", it.next())?.max(1),
            "--max-conns" => args.max_conns = number("--max-conns", it.next())?.max(1),
            "--timeout-secs" => {
                args.timeout_secs = number("--timeout-secs", it.next())?.max(1) as u64;
            }
            "--no-cache" => args.no_cache = true,
            "--bench" => args.bench = true,
            "--connections" => args.connections = number("--connections", it.next())?.max(1),
            "--requests" => args.requests = number("--requests", it.next())?.max(1),
            "--out" => args.out = Some(PathBuf::from(value("--out", it.next())?)),
            "--send" => args.send = Some(PathBuf::from(value("--send", it.next())?)),
            "--offline" => args.offline = Some(PathBuf::from(value("--offline", it.next())?)),
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    let modes = usize::from(args.bench)
        + usize::from(args.send.is_some())
        + usize::from(args.offline.is_some());
    if modes > 1 {
        return Err("--bench, --send and --offline are mutually exclusive".into());
    }
    if args.send.is_some() && args.addr.is_none() {
        return Err("--send needs --addr pointing at a live server".into());
    }
    if args.out.is_some() && !args.bench {
        return Err("--out only applies to --bench".into());
    }
    Ok(args)
}

fn serve_config(args: &ServeArgs) -> compstat_serve::ServerConfig {
    compstat_serve::ServerConfig {
        addr: args.addr.clone().unwrap_or_else(|| "127.0.0.1:0".into()),
        workers: args.workers,
        max_conns: args.max_conns,
        read_timeout: std::time::Duration::from_secs(args.timeout_secs),
        limits: compstat_serve::RequestLimits::default(),
        cache_mode: if args.no_cache {
            CacheMode::Off
        } else {
            CacheMode::from_env_or(CacheMode::ReadWrite)
        },
        cache_dir: None,
        threads: args.threads,
    }
}

fn cmd_serve(rest: &[String]) -> ExitCode {
    let args = match parse_serve_args(rest) {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("compstat serve: {msg}");
            return ExitCode::from(2);
        }
    };
    if let Some(file) = &args.offline {
        return serve_offline(file, &args);
    }
    if let Some(file) = &args.send {
        return serve_send(file, args.addr.as_deref().expect("validated"));
    }
    if args.bench {
        return serve_bench(&args);
    }
    // Foreground server: print the resolved address (port 0 binds a
    // free port), then serve until killed.
    let server = match compstat_serve::Server::spawn(serve_config(&args)) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("compstat serve: cannot bind: {e}");
            return ExitCode::FAILURE;
        }
    };
    if emit(&format!("listening on {}\n", server.local_addr())) == Emit::Failed {
        return ExitCode::FAILURE;
    }
    loop {
        std::thread::sleep(std::time::Duration::from_secs(3600));
    }
}

/// Reads the newline-delimited request frames of a script file,
/// skipping blank lines.
fn read_frames(file: &Path) -> Result<Vec<String>, String> {
    let text = std::fs::read_to_string(file)
        .map_err(|e| format!("cannot read {}: {e}", file.display()))?;
    Ok(text
        .lines()
        .filter(|l| !l.trim().is_empty())
        .map(str::to_string)
        .collect())
}

fn serve_offline(file: &Path, args: &ServeArgs) -> ExitCode {
    let frames = match read_frames(file) {
        Ok(f) => f,
        Err(msg) => {
            eprintln!("compstat serve: {msg}");
            return ExitCode::FAILURE;
        }
    };
    let cfg = serve_config(args);
    let responder = compstat_serve::Responder::new(cfg.limits, args.threads, cfg.cache_mode, None);
    for frame in &frames {
        match emit(&format!("{}\n", responder.respond_line(frame))) {
            Emit::Ok => {}
            Emit::Closed => return ExitCode::SUCCESS,
            Emit::Failed => return ExitCode::FAILURE,
        }
    }
    ExitCode::SUCCESS
}

fn serve_send(file: &Path, addr: &str) -> ExitCode {
    use std::io::{BufRead as _, BufReader};
    let frames = match read_frames(file) {
        Ok(f) => f,
        Err(msg) => {
            eprintln!("compstat serve: {msg}");
            return ExitCode::FAILURE;
        }
    };
    let mut conn = match std::net::TcpStream::connect(addr) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("compstat serve: cannot connect to {addr}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let read_half = match conn.try_clone() {
        Ok(c) => c,
        Err(e) => {
            eprintln!("compstat serve: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut reader = BufReader::new(read_half);
    for frame in &frames {
        if let Err(e) = conn
            .write_all(frame.as_bytes())
            .and_then(|()| conn.write_all(b"\n"))
        {
            eprintln!("compstat serve: send failed: {e}");
            return ExitCode::FAILURE;
        }
        let mut reply = String::new();
        match reader.read_line(&mut reply) {
            Ok(n) if n > 0 => {}
            _ => {
                eprintln!("compstat serve: server closed the connection mid-script");
                return ExitCode::FAILURE;
            }
        }
        match emit(&reply) {
            Emit::Ok => {}
            Emit::Closed => return ExitCode::SUCCESS,
            Emit::Failed => return ExitCode::FAILURE,
        }
    }
    ExitCode::SUCCESS
}

fn serve_bench(args: &ServeArgs) -> ExitCode {
    // Bench an external server when --addr is given; otherwise spin up
    // an in-process one on a free port.
    let (_local, addr) = if let Some(addr) = &args.addr {
        (None, addr.clone())
    } else {
        match compstat_serve::Server::spawn(serve_config(args)) {
            Ok(s) => {
                let addr = s.local_addr().to_string();
                (Some(s), addr)
            }
            Err(e) => {
                eprintln!("compstat serve: cannot bind: {e}");
                return ExitCode::FAILURE;
            }
        }
    };
    let opts = compstat_serve::BenchOptions {
        connections: args.connections,
        requests_per_conn: args.requests,
    };
    eprintln!(
        "driving {} connection(s) x {} request(s) against {addr}...",
        opts.connections, opts.requests_per_conn
    );
    let doc = compstat_serve::run_bench(&addr, &opts);
    if let Some(dir) = &args.out {
        // Same guard as `compstat bench`: never mix non-deterministic
        // timing documents into a byte-stable report directory.
        if dir.join("index.json").is_file() {
            eprintln!(
                "compstat serve: {} holds an index.json report directory; refusing to write bench documents there",
                dir.display()
            );
            return ExitCode::from(2);
        }
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("compstat serve: cannot create {}: {e}", dir.display());
            return ExitCode::FAILURE;
        }
        let path = dir.join("bench-serve.json");
        let mut text = doc.to_json().to_json_string();
        text.push('\n');
        if let Err(e) = cache::write_atomic(&path, text.as_bytes()) {
            eprintln!("compstat serve: cannot write {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
        eprintln!("wrote {}", path.display());
    }
    match emit(&doc.render_text()) {
        Emit::Failed => ExitCode::FAILURE,
        _ => ExitCode::SUCCESS,
    }
}

/// Collects the cache directory's entry files (`*.bfc`), non-recursive
/// — the store is flat by construction.
fn cache_entries(dir: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    for entry in std::fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_file() && path.extension().is_some_and(|e| e == cache::CACHE_FILE_EXT) {
            out.push(path);
        }
    }
    out.sort();
    Ok(out)
}

fn cmd_cache_stats() -> ExitCode {
    let dir = cache::default_dir();
    let mut text = format!("cache directory: {}\n", dir.display());
    if !dir.is_dir() {
        text.push_str("entries: 0 (directory does not exist yet)\n");
        return match emit(&text) {
            Emit::Failed => ExitCode::FAILURE,
            _ => ExitCode::SUCCESS,
        };
    }
    let entries = match cache_entries(&dir) {
        Ok(e) => e,
        Err(e) => {
            eprintln!("compstat cache: cannot read {}: {e}", dir.display());
            return ExitCode::FAILURE;
        }
    };
    let bytes: u64 = entries
        .iter()
        .filter_map(|p| std::fs::metadata(p).ok())
        .map(|m| m.len())
        .sum();
    text.push_str(&format!("entries: {} ({} bytes)\n", entries.len(), bytes));
    match cache::load_stats_file(&dir) {
        Some((last, total)) => {
            let line = |s: &cache::CacheStats| {
                format!(
                    "{} hit(s), {} miss(es), {} write(s), {} error(s)",
                    s.hits, s.misses, s.writes, s.errors
                )
            };
            text.push_str(&format!("last run: {}\n", line(&last)));
            text.push_str(&format!("total:    {}\n", line(&total)));
        }
        None => text.push_str("no run statistics recorded yet\n"),
    }
    match emit(&text) {
        Emit::Failed => ExitCode::FAILURE,
        _ => ExitCode::SUCCESS,
    }
}

fn cmd_cache_clear() -> ExitCode {
    let dir = cache::default_dir();
    if !dir.is_dir() {
        return match emit("cache is already empty\n") {
            Emit::Failed => ExitCode::FAILURE,
            _ => ExitCode::SUCCESS,
        };
    }
    let entries = match cache_entries(&dir) {
        Ok(e) => e,
        Err(e) => {
            eprintln!("compstat cache: cannot read {}: {e}", dir.display());
            return ExitCode::FAILURE;
        }
    };
    // A run killed mid-write leaves `.<name>.tmp-<pid>` files behind;
    // clear owns those too, or they would accumulate invisibly
    // (`cache stats` only counts real entries).
    let orphans: Vec<PathBuf> = match std::fs::read_dir(&dir) {
        Ok(iter) => iter
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| {
                p.is_file()
                    && p.file_name()
                        .and_then(|n| n.to_str())
                        .is_some_and(|n| n.starts_with('.') && n.contains(".tmp-"))
            })
            .collect(),
        Err(_) => Vec::new(),
    };
    let mut removed = 0usize;
    let mut failed = 0usize;
    // Remove only what the cache owns (entries, stats.json, and its
    // own temp droppings), never the directory wholesale —
    // COMPSTAT_CACHE_DIR may point anywhere.
    for path in entries
        .iter()
        .chain(std::iter::once(&dir.join("stats.json")))
        .chain(orphans.iter())
    {
        match std::fs::remove_file(path) {
            Ok(()) => removed += 1,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
            Err(e) => {
                eprintln!("compstat cache: cannot remove {}: {e}", path.display());
                failed += 1;
            }
        }
    }
    if failed > 0 {
        return ExitCode::FAILURE;
    }
    match emit(&format!(
        "removed {removed} file(s) from {}\n",
        dir.display()
    )) {
        Emit::Failed => ExitCode::FAILURE,
        _ => ExitCode::SUCCESS,
    }
}

fn cmd_validate(rest: &[String]) -> ExitCode {
    if rest.is_empty() {
        eprintln!("compstat validate: pass at least one directory or .json file");
        return ExitCode::from(2);
    }
    let mut files: Vec<PathBuf> = Vec::new();
    for arg in rest {
        let path = Path::new(arg);
        if path.is_dir() {
            match collect_json_files(path) {
                Ok(mut found) => files.append(&mut found),
                Err(e) => {
                    eprintln!("compstat validate: cannot read {arg}: {e}");
                    return ExitCode::FAILURE;
                }
            }
        } else {
            files.push(path.to_path_buf());
        }
    }
    if files.is_empty() {
        eprintln!("compstat validate: no .json files found");
        return ExitCode::FAILURE;
    }
    files.sort();
    // Check every file, accumulating failures: one invocation reports
    // every invalid document with its reason, not just the first.
    let mut invalid = 0usize;
    for path in &files {
        let reason = match std::fs::read_to_string(path) {
            Ok(text) => match Json::parse(&text) {
                Ok(doc) => match check_schema(path, &doc) {
                    Ok(()) => continue,
                    Err(msg) => msg,
                },
                Err(e) => e.to_string(),
            },
            Err(e) => format!("cannot read: {e}"),
        };
        eprintln!("compstat validate: {}: {reason}", path.display());
        invalid += 1;
    }
    if invalid > 0 {
        eprintln!(
            "compstat validate: {invalid} of {} document(s) invalid",
            files.len()
        );
        return ExitCode::FAILURE;
    }
    if emit(&format!("{} document(s) valid\n", files.len())) == Emit::Failed {
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

/// `audit` shares `diff`'s outer verdict codes: 0 = clean, 2 =
/// violations, 3 = usage or IO trouble.
const AUDIT_VIOLATIONS: u8 = 2;
const AUDIT_TROUBLE: u8 = 3;

struct AuditArgs {
    json: bool,
    out: Option<PathBuf>,
    root: Option<PathBuf>,
    regen: bool,
    paths: Vec<PathBuf>,
}

fn parse_audit_args(rest: &[String]) -> Result<AuditArgs, String> {
    let mut args = AuditArgs {
        json: false,
        out: None,
        root: None,
        regen: false,
        paths: Vec::new(),
    };
    let mut it = rest.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--json" => args.json = true,
            "--regen-fingerprints" => args.regen = true,
            "--out" => {
                let v = it.next().ok_or("--out requires a file path")?;
                args.out = Some(PathBuf::from(v));
            }
            "--root" => {
                let v = it.next().ok_or("--root requires a directory")?;
                args.root = Some(PathBuf::from(v));
            }
            other if other.starts_with('-') => {
                return Err(format!("unknown flag {other:?}"));
            }
            path => args.paths.push(PathBuf::from(path)),
        }
    }
    if args.regen && !args.paths.is_empty() {
        return Err("--regen-fingerprints audits the whole tree; drop the explicit paths".into());
    }
    Ok(args)
}

/// Walks up from the current directory to the enclosing Cargo
/// workspace root (the audit's default path base).
fn find_workspace_root() -> Option<PathBuf> {
    let mut dir = std::env::current_dir().ok()?;
    loop {
        let manifest = dir.join("Cargo.toml");
        if manifest.is_file() {
            if let Ok(text) = std::fs::read_to_string(&manifest) {
                if text.contains("[workspace]") {
                    return Some(dir);
                }
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}

fn cmd_audit(rest: &[String]) -> ExitCode {
    let args = match parse_audit_args(rest) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("compstat audit: {e}");
            return ExitCode::from(AUDIT_TROUBLE);
        }
    };
    let Some(root) = args.root.clone().or_else(find_workspace_root) else {
        eprintln!("compstat audit: not inside a Cargo workspace (pass --root)");
        return ExitCode::from(AUDIT_TROUBLE);
    };
    let opts = AuditOptions {
        root,
        paths: args.paths,
        fingerprints: None,
    };
    if args.regen {
        match fingerprint::regen(&opts.root, &opts.fingerprints_path()) {
            Ok(n) => {
                let line = format!(
                    "regenerated {} with {n} kernel fingerprint(s)\n",
                    fingerprint::DEFAULT_PATH
                );
                if emit(&line) == Emit::Failed {
                    return ExitCode::from(AUDIT_TROUBLE);
                }
            }
            Err(e) => {
                eprintln!("compstat audit: cannot regenerate fingerprints: {e}");
                return ExitCode::from(AUDIT_TROUBLE);
            }
        }
    }
    let audit = match run_audit(&opts) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("compstat audit: {e}");
            return ExitCode::from(AUDIT_TROUBLE);
        }
    };
    if let Some(out) = &args.out {
        let text = format!("{}\n", audit.to_json().to_json_string());
        if let Err(e) = cache::write_atomic(out, text.as_bytes()) {
            eprintln!("compstat audit: cannot write {}: {e}", out.display());
            return ExitCode::from(AUDIT_TROUBLE);
        }
    }
    let rendering = if args.json {
        format!("{}\n", audit.to_json().to_json_string())
    } else {
        audit.render_text()
    };
    if emit(&rendering) == Emit::Failed {
        return ExitCode::from(AUDIT_TROUBLE);
    }
    if audit.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(AUDIT_VIOLATIONS)
    }
}

/// Collects every `.json` file under `dir`, recursively (sharded runs
/// nest report directories, e.g. `reports/run1/`, `reports/run2/`).
fn collect_json_files(dir: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    for entry in std::fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            out.append(&mut collect_json_files(&path)?);
        } else if path.extension().is_some_and(|e| e == "json") {
            out.push(path);
        }
    }
    Ok(out)
}

/// Checks the schema envelope of a report or index document.
fn check_schema(path: &Path, doc: &Json) -> Result<(), String> {
    let schema = doc
        .get("schema")
        .and_then(Json::as_str)
        .ok_or("missing schema field")?;
    match schema {
        s if s == compstat_core::REPORT_SCHEMA => {
            let name = doc
                .get("experiment")
                .and_then(Json::as_str)
                .ok_or("report missing experiment name")?;
            let stem = path.file_stem().and_then(|s| s.to_str()).unwrap_or("");
            if stem != name {
                return Err(format!("file name does not match experiment {name:?}"));
            }
            doc.get("blocks")
                .and_then(Json::as_arr)
                .ok_or("report missing blocks array")?;
            Ok(())
        }
        s if s == INDEX_SCHEMA => {
            let entries = doc
                .get("experiments")
                .and_then(Json::as_arr)
                .ok_or("index missing experiments array")?;
            let count = doc.get("count").and_then(Json::as_f64).unwrap_or(-1.0);
            if count != entries.len() as f64 {
                return Err("index count does not match experiments length".into());
            }
            Ok(())
        }
        s if s == compstat_core::BENCH_SCHEMA => {
            // Full structural validation, including the mandatory
            // `"non_deterministic": true` marker.
            BenchDoc::from_json(doc).map(|_| ())
        }
        s if s == compstat_serve::SERVE_BENCH_SCHEMA => {
            compstat_serve::ServeBenchDoc::from_json(doc).map(|_| ())
        }
        s if s == compstat_analysis::doc::AUDIT_SCHEMA => {
            let errors = compstat_analysis::doc::validate_json(doc);
            if errors.is_empty() {
                Ok(())
            } else {
                Err(errors.join("; "))
            }
        }
        s if s == fingerprint::FINGERPRINTS_SCHEMA => {
            // Accumulate every problem (duplicates, non-hex digests,
            // missing fields), matching the diff-gate's
            // all-errors-at-once behavior.
            fingerprint::validate_doc(doc)
                .map(|_| ())
                .map_err(|errors| errors.join("; "))
        }
        s if s == compstat_core::diff::TOLERANCES_SCHEMA => {
            // Check through the real loader so bad tolerance spellings
            // fail validation, not the later diff run.
            TolerancePolicy::from_json(doc)
                .map(|_| ())
                .map_err(|e| e.message)
        }
        other => Err(format!("unknown schema {other:?}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strings(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn run_args_parse_flags_and_names() {
        let p = parse_run_args(&strings(&[
            "fig01",
            "--scale",
            "quick",
            "--threads",
            "4",
            "--out",
            "reports",
        ]))
        .unwrap();
        assert_eq!(p.names, ["fig01"]);
        assert!(!p.all);
        assert_eq!(p.scale, Scale::Quick);
        assert_eq!(p.threads, Some(4));
        assert_eq!(p.out.as_deref(), Some(Path::new("reports")));
        assert!(!p.no_cache);

        let p = parse_run_args(&strings(&["--all", "--no-cache"])).unwrap();
        assert!(p.no_cache);
    }

    #[test]
    fn run_args_paper_scale_is_full() {
        let p = parse_run_args(&strings(&["--all", "--scale", "paper"])).unwrap();
        assert!(p.all);
        assert_eq!(p.scale, Scale::Full);
    }

    #[test]
    fn run_args_reject_bad_usage() {
        assert!(parse_run_args(&strings(&[])).is_err());
        assert!(parse_run_args(&strings(&["--all", "fig01"])).is_err());
        assert!(parse_run_args(&strings(&["--scale", "warp"])).is_err());
        assert!(parse_run_args(&strings(&["--threads", "many"])).is_err());
        assert!(parse_run_args(&strings(&["--bogus"])).is_err());
        assert!(parse_run_args(&strings(&["fig01", "--out"])).is_err());
    }

    #[test]
    fn bench_args_parse_flags() {
        let p = parse_bench_args(&strings(&[
            "--quick",
            "--threads",
            "2",
            "--out",
            "bench-docs",
        ]))
        .unwrap();
        assert_eq!(p.scale, Scale::Quick);
        assert_eq!(p.threads, Some(2));
        assert_eq!(p.out.as_deref(), Some(Path::new("bench-docs")));

        let p = parse_bench_args(&strings(&["--scale", "paper"])).unwrap();
        assert_eq!(p.scale, Scale::Full);
        assert_eq!(p.threads, None);
        assert_eq!(p.out, None);
    }

    #[test]
    fn bench_args_reject_bad_usage() {
        assert!(parse_bench_args(&strings(&["fig01"])).is_err());
        assert!(parse_bench_args(&strings(&["--scale", "warp"])).is_err());
        assert!(parse_bench_args(&strings(&["--threads", "many"])).is_err());
        assert!(parse_bench_args(&strings(&["--out"])).is_err());
        assert!(parse_bench_args(&strings(&["--bogus"])).is_err());
    }

    #[test]
    fn schema_check_accepts_valid_bench_documents_only() {
        let doc = Json::parse(
            r#"{"schema":"compstat-bench/v1","non_deterministic":true,
                "suite":"bigfloat","scale":"quick","threads":1,
                "unix_ms":1765000000000,
                "entries":[{"id":"bigfloat/div/256","iters":100,"reps":3,
                            "min_ns":300.0,"median_ns":310.0,"mean_ns":312.5}]}"#,
        )
        .unwrap();
        assert!(check_schema(Path::new("bench-bigfloat.json"), &doc).is_ok());
        // Without the non-determinism marker the document is invalid.
        let stripped = match &doc {
            Json::Obj(pairs) => Json::Obj(
                pairs
                    .iter()
                    .filter(|(k, _)| k != "non_deterministic")
                    .cloned()
                    .collect(),
            ),
            _ => unreachable!(),
        };
        let err = check_schema(Path::new("bench-bigfloat.json"), &stripped).unwrap_err();
        assert!(err.contains("non_deterministic"), "{err}");
    }

    #[test]
    fn diff_args_parse_dirs_and_flags() {
        let p = parse_diff_args(&strings(&["goldens/quick", "fresh", "--json"])).unwrap();
        assert_eq!(p.baseline, Path::new("goldens/quick"));
        assert_eq!(p.new, Path::new("fresh"));
        assert!(p.json);
        assert_eq!(p.tolerances, None);

        let p = parse_diff_args(&strings(&["a", "b", "--tolerances", "tol.json"])).unwrap();
        assert_eq!(p.tolerances.as_deref(), Some(Path::new("tol.json")));
        assert!(!p.json);
    }

    #[test]
    fn diff_args_reject_bad_usage() {
        assert!(parse_diff_args(&strings(&[])).is_err());
        assert!(parse_diff_args(&strings(&["only-one"])).is_err());
        assert!(parse_diff_args(&strings(&["a", "b", "c"])).is_err());
        assert!(parse_diff_args(&strings(&["a", "b", "--tolerances"])).is_err());
        assert!(parse_diff_args(&strings(&["a", "b", "--bogus"])).is_err());
    }

    #[test]
    fn index_is_deterministic_and_self_consistent() {
        let reports: Vec<Report> = ["tab01", "tab02"]
            .iter()
            .map(|n| find(n).unwrap().run(&Runtime::serial(), Scale::Quick))
            .collect();
        let a = index_doc_for_reports(Scale::Quick, None, &reports).to_json_string();
        let b = index_doc_for_reports(Scale::Quick, None, &reports).to_json_string();
        assert_eq!(a, b);
        let doc = Json::parse(&a).unwrap();
        assert!(check_schema(Path::new("index.json"), &doc).is_ok());
        assert_eq!(doc.get("count").unwrap().as_f64(), Some(2.0));
        // A shard-stamped index still passes the schema check.
        let stamped =
            index_doc_for_reports(Scale::Quick, Some(Shard::new(1, 3).unwrap()), &reports)
                .to_json_string();
        let doc = Json::parse(&stamped).unwrap();
        assert!(check_schema(Path::new("index.json"), &doc).is_ok());
    }

    #[test]
    fn run_args_parse_and_validate_shard() {
        let p = parse_run_args(&strings(&["--all", "--shard", "2/3"])).unwrap();
        assert_eq!(p.shard, Some(Shard::new(2, 3).unwrap()));

        for bad in ["0/3", "4/3", "a/b", "3/0", "3", ""] {
            let err = parse_run_args(&strings(&["--all", "--shard", bad]))
                .map(|_| ())
                .unwrap_err();
            assert!(err.contains(&format!("{bad:?}")), "{bad}: {err}");
        }
        // --shard partitions the registry; explicit names conflict.
        assert!(parse_run_args(&strings(&["fig01", "--shard", "1/2"])).is_err());
        assert!(parse_run_args(&strings(&["--shard", "1/2"])).is_err());
        assert!(parse_run_args(&strings(&["--all", "--shard"])).is_err());
    }

    #[test]
    fn merge_args_require_dirs_and_out() {
        let p = parse_merge_args(&strings(&["shard-1", "shard-2", "--out", "merged"])).unwrap();
        assert_eq!(p.dirs, [PathBuf::from("shard-1"), PathBuf::from("shard-2")]);
        assert_eq!(p.out, Path::new("merged"));

        assert!(parse_merge_args(&strings(&[])).is_err());
        assert!(parse_merge_args(&strings(&["shard-1"])).is_err());
        assert!(parse_merge_args(&strings(&["shard-1", "--out"])).is_err());
        assert!(parse_merge_args(&strings(&["--out", "merged"])).is_err());
        assert!(parse_merge_args(&strings(&["a", "--bogus", "--out", "m"])).is_err());
    }

    #[test]
    fn schema_check_rejects_mismatched_file_names() {
        let report = find("tab01").unwrap().run(&Runtime::serial(), Scale::Quick);
        let doc = Json::parse(&report.to_json_string()).unwrap();
        assert!(check_schema(Path::new("tab01.json"), &doc).is_ok());
        assert!(check_schema(Path::new("tab02.json"), &doc).is_err());
    }
}
