//! Differential tests for the arithmetic kernels.
//!
//! Two independent cross-checks, both bit-exact:
//!
//! 1. **Correct rounding** — computing any of `+ - * /` at
//!    `2*prec + 64` working bits and then rounding to `prec` must equal
//!    the direct operation at `prec`. For correctly-rounded ops on
//!    `prec`-bit operands, double rounding through `q >= 2p + 2` bits
//!    is innocuous (Figueroa's theorem), so any divergence means one of
//!    the two paths rounded wrong.
//! 2. **Kernel equivalence** — the fixed-width fast paths and the
//!    Knuth-D division must agree bit-for-bit with the general slice
//!    kernels and the retired restoring division (`testing::*`) across
//!    operand widths 24..4096.

use compstat_bigfloat::{bit_identical, testing, BigFloat, Context};
use proptest::prelude::*;

/// Deterministic splitmix64 stream for the fixed-width sweeps.
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A random nonzero value with exactly `prec` significant bits, a random
/// exponent in ±2000, and a random sign — built exclusively through the
/// public exact-arithmetic API so the generator can't share bugs with
/// the kernels under test.
fn random_operand(state: &mut u64, prec: u32) -> BigFloat {
    let nl = (prec as usize).div_ceil(64);
    let build = Context::new((nl as u32) * 64);
    let mut acc = BigFloat::zero();
    for i in 0..nl {
        let mut l = splitmix(state);
        if i == 0 {
            // Top limb: keep the value full-width.
            l |= 1 << 63;
        }
        // acc = acc * 2^64 + l, exact at build precision.
        acc = build.add(&acc.mul_pow2(64), &BigFloat::from_u64(l));
    }
    let exp = (splitmix(state) % 4001) as i64 - 2000;
    let v = acc.round_to(prec).mul_pow2(exp);
    if splitmix(state) & 1 == 1 {
        v.neg()
    } else {
        v
    }
}

const WIDTHS: [u32; 12] = [24, 53, 64, 127, 128, 192, 256, 320, 512, 1024, 2048, 4096];

#[test]
fn double_rounding_differential_across_widths() {
    let mut st = 0x5EED_0001u64;
    for &p in &WIDTHS {
        let cp = Context::new(p);
        let cw = Context::new(2 * p + 64);
        for _ in 0..8 {
            let a = random_operand(&mut st, p);
            let b = random_operand(&mut st, p);
            let cases = [
                ("add", cp.add(&a, &b), cw.add(&a, &b)),
                ("sub", cp.sub(&a, &b), cw.sub(&a, &b)),
                ("mul", cp.mul(&a, &b), cw.mul(&a, &b)),
                ("div", cp.div(&a, &b), cw.div(&a, &b)),
            ];
            for (name, direct, wide) in cases {
                let double = cp.round(&wide);
                assert!(
                    bit_identical(&direct, &double),
                    "{name} at prec {p}: direct != wide-then-round for a={a:?} b={b:?}"
                );
            }
        }
    }
}

#[test]
fn fast_paths_match_general_kernels_across_widths() {
    let mut st = 0x5EED_0002u64;
    for &p in &WIDTHS {
        let cp = Context::new(p);
        for i in 0..8 {
            let a = random_operand(&mut st, p);
            // Every other round: mismatched operand widths, so the
            // unequal-limb-count paths (shifted alignment in add, the
            // general multiply) get exercised too.
            let b = if i % 2 == 0 {
                random_operand(&mut st, p)
            } else {
                random_operand(&mut st, 24.max(p / 2))
            };
            let pairs = [
                ("add", cp.add(&a, &b), testing::add_general(&a, &b, p)),
                ("sub", cp.sub(&a, &b), testing::sub_general(&a, &b, p)),
                ("mul", cp.mul(&a, &b), testing::mul_general(&a, &b, p)),
                ("div", cp.div(&a, &b), testing::div_restoring(&a, &b, p)),
            ];
            for (name, fast, general) in pairs {
                assert!(
                    bit_identical(&fast, &general),
                    "{name} at prec {p}: fast path != general kernel for a={a:?} b={b:?}"
                );
            }
        }
    }
}

#[test]
fn cancellation_and_near_equal_operands_stay_identical() {
    // Near-total cancellation is where the sticky/decrement logic in the
    // subtract path earns its keep; drive it explicitly at the fast-path
    // widths and one general width.
    let mut st = 0x5EED_0003u64;
    for &p in &[53u32, 128, 192, 256, 1024] {
        let cp = Context::new(p);
        let cw = Context::new(2 * p + 64);
        for _ in 0..16 {
            let a = random_operand(&mut st, p);
            // b agrees with a in all but the last few significant bits:
            // scale a perturbation to sit within a few ulps of a.
            let eps0 = random_operand(&mut st, p).abs();
            let shift = a.exponent().unwrap() - eps0.exponent().unwrap() - p as i64
                + (splitmix(&mut st) % 8) as i64
                - 3;
            let b = cp.add(&a, &eps0.mul_pow2(shift));
            let direct = cp.sub(&a, &b);
            let wide = cp.round(&cw.sub(&a, &b));
            assert!(
                bit_identical(&direct, &wide),
                "cancellation sub at prec {p} diverged"
            );
            let general = testing::sub_general(&a, &b, p);
            assert!(
                bit_identical(&direct, &general),
                "cancellation sub at prec {p}: fast != general"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn ops_are_correctly_rounded_at_random_precision(
        x in proptest::num::f64::NORMAL,
        y in proptest::num::f64::NORMAL,
        ex in -2000i64..2000,
        ey in -2000i64..2000,
        prec in 24u32..512,
    ) {
        // Operands rounded to `prec` bits first, so the double-rounding
        // theorem's precondition (p-bit inputs) holds even below 53 bits.
        let a = BigFloat::from_f64(x).round_to(prec).mul_pow2(ex);
        let b = BigFloat::from_f64(y).round_to(prec).mul_pow2(ey);
        let cp = Context::new(prec);
        let cw = Context::new(2 * prec + 64);
        let cases = [
            ("add", cp.add(&a, &b), cw.add(&a, &b)),
            ("sub", cp.sub(&a, &b), cw.sub(&a, &b)),
            ("mul", cp.mul(&a, &b), cw.mul(&a, &b)),
            ("div", cp.div(&a, &b), cw.div(&a, &b)),
        ];
        for (name, direct, wide) in cases {
            let double = cp.round(&wide);
            prop_assert!(
                bit_identical(&direct, &double),
                "{} of {}*2^{} and {}*2^{} at prec {}", name, x, ex, y, ey, prec
            );
        }
    }

    #[test]
    fn fast_paths_match_general_at_random_precision(
        x in proptest::num::f64::NORMAL,
        y in proptest::num::f64::NORMAL,
        ex in -2000i64..2000,
        ey in -2000i64..2000,
        prec in 24u32..300,
    ) {
        let a = BigFloat::from_f64(x).round_to(prec).mul_pow2(ex);
        let b = BigFloat::from_f64(y).round_to(prec).mul_pow2(ey);
        let cp = Context::new(prec);
        let pairs = [
            ("add", cp.add(&a, &b), testing::add_general(&a, &b, prec)),
            ("sub", cp.sub(&a, &b), testing::sub_general(&a, &b, prec)),
            ("mul", cp.mul(&a, &b), testing::mul_general(&a, &b, prec)),
            ("div", cp.div(&a, &b), testing::div_restoring(&a, &b, prec)),
        ];
        for (name, fast, general) in pairs {
            prop_assert!(
                bit_identical(&fast, &general),
                "{} of {}*2^{} and {}*2^{} at prec {}", name, x, ex, y, ey, prec
            );
        }
    }
}
