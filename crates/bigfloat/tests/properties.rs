//! Property-based tests for `compstat-bigfloat`.
//!
//! The oracle for the oracle: BigFloat at 53-bit precision must agree with
//! hardware f64 bit-for-bit on every in-range operation, and algebraic
//! identities must hold at arbitrary precision.

use compstat_bigfloat::{BigFloat, Context};
use proptest::prelude::*;

fn finite_f64() -> impl Strategy<Value = f64> {
    proptest::num::f64::NORMAL | proptest::num::f64::SUBNORMAL | proptest::num::f64::ZERO
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn f64_round_trip(x in finite_f64()) {
        let b = BigFloat::from_f64(x);
        // -0.0 collapses to the single zero.
        let expect = if x == 0.0 { 0.0 } else { x };
        prop_assert_eq!(b.to_f64(), expect);
    }

    #[test]
    fn add_matches_hardware(x in finite_f64(), y in finite_f64()) {
        let c = Context::new(53);
        let r = c.add(&BigFloat::from_f64(x), &BigFloat::from_f64(y)).to_f64();
        let expect = x + y;
        // BigFloat has unbounded exponent range: results that are f64-
        // subnormal (double-rounded by hardware) or overflow are the only
        // legitimate divergence; filter to the pre-rounded comparison.
        if expect.is_finite() && expect.abs() >= f64::MIN_POSITIVE && (expect == 0.0 || expect.abs() < f64::MAX) {
            prop_assert_eq!(r, expect, "add({}, {})", x, y);
        }
    }

    #[test]
    fn mul_matches_hardware(x in finite_f64(), y in finite_f64()) {
        let c = Context::new(53);
        let r = c.mul(&BigFloat::from_f64(x), &BigFloat::from_f64(y)).to_f64();
        let expect = x * y;
        if expect.is_finite() && (expect == 0.0 || expect.abs() >= f64::MIN_POSITIVE) {
            // Exclude products that are exactly zero from underflow (the
            // BigFloat product is tiny-but-nonzero there).
            if expect != 0.0 || x == 0.0 || y == 0.0 {
                prop_assert_eq!(r, expect, "mul({}, {})", x, y);
            }
        }
    }

    #[test]
    fn div_matches_hardware(x in finite_f64(), y in finite_f64()) {
        prop_assume!(y != 0.0);
        let c = Context::new(53);
        let r = c.div(&BigFloat::from_f64(x), &BigFloat::from_f64(y)).to_f64();
        let expect = x / y;
        if expect.is_finite() && (expect == 0.0 || expect.abs() >= f64::MIN_POSITIVE)
            && (expect != 0.0 || x == 0.0) {
                prop_assert_eq!(r, expect, "div({}, {})", x, y);
            }
    }

    #[test]
    fn add_commutes(x in finite_f64(), y in finite_f64()) {
        let c = Context::new(200);
        let a = BigFloat::from_f64(x);
        let b = BigFloat::from_f64(y);
        prop_assert!(c.add(&a, &b) == c.add(&b, &a) || (x + y != x + y));
    }

    #[test]
    fn mul_commutes(x in finite_f64(), y in finite_f64()) {
        let c = Context::new(200);
        let a = BigFloat::from_f64(x);
        let b = BigFloat::from_f64(y);
        prop_assert!(c.mul(&a, &b) == c.mul(&b, &a));
    }

    #[test]
    fn sub_self_is_zero(x in finite_f64()) {
        let c = Context::new(128);
        let a = BigFloat::from_f64(x);
        prop_assert!(c.sub(&a, &a).is_zero());
    }

    #[test]
    fn add_sub_inverse_at_high_precision(
        mx in 1.0f64..2.0, my in 1.0f64..2.0,
        ex in -50i32..50, ey in -50i32..50,
        sx in proptest::bool::ANY, sy in proptest::bool::ANY,
    ) {
        // (x + y) - y == x exactly when the working precision holds the
        // entire aligned sum; magnitudes within 100 binades of each other.
        let x = if sx { -mx } else { mx } * 2f64.powi(ex);
        let y = if sy { -my } else { my } * 2f64.powi(ey);
        let c = Context::new(300);
        let a = BigFloat::from_f64(x);
        let b = BigFloat::from_f64(y);
        let r = c.sub(&c.add(&a, &b), &b);
        prop_assert!(r == a, "({x} + {y}) - {y}");
    }

    #[test]
    fn ordering_matches_f64(x in finite_f64(), y in finite_f64()) {
        let a = BigFloat::from_f64(x);
        let b = BigFloat::from_f64(y);
        let expect = if x == 0.0 && y == 0.0 {
            Some(core::cmp::Ordering::Equal) // single zero
        } else {
            x.partial_cmp(&y)
        };
        prop_assert_eq!(a.partial_cmp(&b), expect);
    }

    #[test]
    fn mul_pow2_is_exact_scaling(x in finite_f64(), k in -600i64..600) {
        prop_assume!(x != 0.0);
        let a = BigFloat::from_f64(x);
        let scaled = a.mul_pow2(k);
        prop_assert_eq!(scaled.exponent().unwrap(), a.exponent().unwrap() + k);
        let back = scaled.mul_pow2(-k);
        prop_assert!(back == a);
    }

    #[test]
    fn ln_exp_round_trip_positive(x in 1e-30f64..1e30) {
        let c = Context::new(160);
        let b = BigFloat::from_f64(x);
        let back = c.exp(&c.ln(&b));
        let err = (&back - &b).abs();
        let bound = b.exponent().unwrap() - 150;
        prop_assert!(err.is_zero() || err.exponent().unwrap() <= bound,
            "|exp(ln({x})) - {x}| = {err}");
    }

    #[test]
    fn ln_is_monotone(x in 1e-200f64..1e200, factor in 1.0000001f64..1e10) {
        let c = Context::new(128);
        let a = BigFloat::from_f64(x);
        let b = BigFloat::from_f64(x * factor);
        prop_assume!(x * factor > x); // factor didn't vanish in rounding
        prop_assert!(c.ln(&a) < c.ln(&b));
    }

    #[test]
    fn to_i64_round_matches_f64(x in -1e15f64..1e15) {
        let b = BigFloat::from_f64(x);
        prop_assert_eq!(b.to_i64_round(), x.round_ties_even() as i64);
    }

    #[test]
    fn context_rounding_is_idempotent(x in finite_f64(), prec in 2u32..400) {
        // Rounding is a projection: applying it twice changes nothing.
        let c = Context::new(prec);
        let once = c.round(&BigFloat::from_f64(x));
        let twice = c.round(&once);
        prop_assert!(twice == once, "round_to({prec}) not idempotent at {x}");
    }

    #[test]
    fn f64_round_trip_is_exact_at_53_bits_or_more(x in finite_f64(), extra in 0u32..300) {
        // Any context precision >= 53 bits holds every finite f64
        // exactly: from_f64 -> round -> to_f64 is the identity.
        let c = Context::new(53 + extra);
        let rounded = c.round(&BigFloat::from_f64(x));
        let expect = if x == 0.0 { 0.0 } else { x }; // -0.0 collapses
        prop_assert_eq!(rounded.to_f64(), expect, "prec {}", 53 + extra);
    }

    #[test]
    fn rounding_below_53_bits_only_drops_low_bits(x in finite_f64(), prec in 2u32..52) {
        // Rounding to fewer bits moves the value by at most one ulp at
        // that precision, and never changes the sign.
        prop_assume!(x != 0.0);
        let c = Context::new(prec);
        let a = BigFloat::from_f64(x);
        let r = c.round(&a);
        if !r.is_zero() {
            prop_assert_eq!(r.sign(), a.sign());
            let err = (&r - &a).abs();
            if !err.is_zero() {
                // |r - x| <= 2^(exp(x) - prec) (one ulp, RNE gives half).
                prop_assert!(
                    err.exponent().unwrap() <= a.exponent().unwrap() - prec as i64,
                    "rounding to {prec} bits moved {x} too far"
                );
            }
        }
    }

    #[test]
    fn add_commutes_at_every_precision(x in finite_f64(), y in finite_f64(), prec in 2u32..300) {
        let c = Context::new(prec);
        let a = BigFloat::from_f64(x);
        let b = BigFloat::from_f64(y);
        prop_assert!(c.add(&a, &b) == c.add(&b, &a), "add at prec {prec}");
    }

    #[test]
    fn mul_commutes_at_every_precision(x in finite_f64(), y in finite_f64(), prec in 2u32..300) {
        let c = Context::new(prec);
        let a = BigFloat::from_f64(x);
        let b = BigFloat::from_f64(y);
        prop_assert!(c.mul(&a, &b) == c.mul(&b, &a), "mul at prec {prec}");
    }
}

#[test]
fn deep_product_chain_has_exact_exponent() {
    // Multiply 0.5 * (3/4) alternately; exponents must track exactly.
    let c = Context::new(256);
    let half = BigFloat::from_f64(0.5);
    let mut v = BigFloat::one();
    for _ in 0..10_000 {
        v = c.mul(&v, &half);
    }
    assert_eq!(v.exponent(), Some(-10_000));
}
