//! Differential property tests for the tiering seam.
//!
//! Contract under test: a [`TieredCtx`] at `prec = 53` (the fast,
//! hardware-`f64` tier) produces **bit-identical** results to
//! `Context::new(53)` for `add`/`sub`/`mul`/`div`/`sum`/`ln`/`exp` on
//! the same operands, across the *entire* `i64` exponent range —
//! including exponents millions of binades outside binary64's reach —
//! and that promotion `Native → Hdr → Big` round-trips values exactly.
//!
//! Inputs are decoded from a single `u64` seed per operand (the
//! vendored proptest has no tuple/`oneof` combinators): the seed fans
//! out through splitmix64 into a value class (normal / zero / ±inf /
//! NaN), a 53-bit mantissa, and an exponent drawn from the native
//! window, the HDR band the paper's likelihoods live in, or the `i64`
//! saturation edges.

use compstat_bigfloat::{
    bit_identical, BigFloat, Context, HdrFloat, Sign, Tiered, TieredCtx, NATIVE_EXP_LIMIT,
};
use proptest::prelude::*;

/// splitmix64: fans one seed into independent-looking streams.
fn mix(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A signed 53-bit mantissa in `±[1, 2)` from a seed.
fn decode_mantissa(s: u64) -> f64 {
    let m = 1.0 + (s >> 12) as f64 * (f64::EPSILON / 2.0);
    if s & 1 == 1 {
        -m
    } else {
        m
    }
}

/// An exponent anywhere in `i64`, weighted toward the interesting
/// regions: the native window, the HDR band, and the saturation edges.
fn decode_exponent(s: u64) -> i64 {
    let r = mix(s);
    match s % 10 {
        0..=3 => -600 + (r % 1200) as i64,
        4 | 5 => 1000 + (r % 3_999_000) as i64,
        6 | 7 => -1000 - (r % 3_999_000) as i64,
        8 => i64::MIN + (r % 2000) as i64,
        _ => i64::MAX - (r % 2000) as i64,
    }
}

/// A finite nonzero 53-bit `BigFloat` anywhere in the exponent range.
fn decode_normal(s: u64) -> BigFloat {
    BigFloat::from_f64(decode_mantissa(mix(s))).mul_pow2(decode_exponent(mix(mix(s))))
}

/// Normals plus the specials the arithmetic tables branch on.
fn decode_any(s: u64) -> BigFloat {
    match s % 16 {
        0 => BigFloat::zero(),
        1 => BigFloat::infinity(Sign::Pos),
        2 => BigFloat::infinity(Sign::Neg),
        3 => BigFloat::nan(),
        _ => decode_normal(s),
    }
}

fn bf_any() -> impl Strategy<Value = BigFloat> {
    proptest::num::u64::ANY.prop_map(decode_any)
}

fn bf_normal() -> impl Strategy<Value = BigFloat> {
    proptest::num::u64::ANY.prop_map(decode_normal)
}

/// Compares with 53-bit precision tags aligned (specials produced by
/// different constructors carry different tags; `round_to` canonicalizes
/// the tag without touching value bits).
fn same_bits(got: &BigFloat, want: &BigFloat) -> bool {
    bit_identical(&got.round_to(53), &want.round_to(53))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn fast_tier_ops_match_context53_bit_for_bit(a in bf_any(), b in bf_any()) {
        let t = TieredCtx::new(53);
        let c = Context::new(53);
        let (ta, tb) = (t.from_bigfloat(&a), t.from_bigfloat(&b));
        for (name, got, want) in [
            ("add", t.add(&ta, &tb), c.add(&a, &b)),
            ("sub", t.sub(&ta, &tb), c.sub(&a, &b)),
            ("mul", t.mul(&ta, &tb), c.mul(&a, &b)),
            ("div", t.div(&ta, &tb), c.div(&a, &b)),
        ] {
            prop_assert!(
                same_bits(&got.to_bigfloat(), &want),
                "{}({:?}, {:?}) = {:?}, want {:?}", name, a, b, got, want
            );
        }
    }

    #[test]
    fn fast_tier_sum_matches_context53(xs in proptest::collection::vec(bf_any(), 0..12)) {
        let t = TieredCtx::new(53);
        let c = Context::new(53);
        let tv: Vec<Tiered> = xs.iter().map(|x| t.from_bigfloat(x)).collect();
        let got = t.sum(tv.iter()).to_bigfloat();
        let want = c.sum(xs.iter());
        prop_assert!(same_bits(&got, &want), "sum({:?}) = {:?}, want {:?}", xs, got, want);
    }

    #[test]
    fn fast_tier_ln_exp_match_context53(x in bf_any()) {
        let t = TieredCtx::new(53);
        let c = Context::new(53);
        let tx = t.from_bigfloat(&x);
        let (gl, wl) = (t.ln(&tx).to_bigfloat(), c.ln(&x));
        prop_assert!(same_bits(&gl, &wl), "ln({:?}) = {:?}, want {:?}", x, gl, wl);
        let (ge, we) = (t.exp(&tx).to_bigfloat(), c.exp(&x));
        prop_assert!(same_bits(&ge, &we), "exp({:?}) = {:?}, want {:?}", x, ge, we);
    }

    #[test]
    fn promotion_round_trips_exactly(x in bf_any()) {
        // Fast tier (Native/Hdr) -> BigFloat -> fast tier is the
        // identity on 53-bit values, wherever the exponent lies.
        let t = TieredCtx::new(53);
        let tx = t.from_bigfloat(&x);
        let through_big = t.from_bigfloat(&tx.to_bigfloat());
        if x.is_nan() {
            prop_assert!(through_big.is_nan());
        } else {
            prop_assert_eq!(&through_big, &tx);
            prop_assert!(same_bits(&through_big.to_bigfloat(), &tx.to_bigfloat()));
        }
        // The big tier preserves the operand's exact bits (no
        // re-rounding on import).
        let big = TieredCtx::new(192);
        prop_assert!(bit_identical(&big.from_bigfloat(&x).to_bigfloat(), &x));
    }

    #[test]
    fn tier_storage_respects_the_native_window(x in bf_normal()) {
        let t = TieredCtx::new(53);
        let e = x.exponent().unwrap();
        let v = t.from_bigfloat(&x);
        if e.abs() <= NATIVE_EXP_LIMIT {
            prop_assert_eq!(v.tier(), "native");
        } else {
            prop_assert_eq!(v.tier(), "hdr");
        }
        prop_assert_eq!(v.exponent(), Some(e));
    }

    #[test]
    fn native_window_f64_round_trip(s in proptest::num::u64::ANY) {
        // Inside the native window the Tiered value IS the f64.
        let m = decode_mantissa(s);
        let e = (mix(s) % 1000) as i32 - 500;
        let t = TieredCtx::new(53);
        let x = m * 2f64.powi(e);
        let v = t.from_f64(x);
        prop_assert_eq!(v.tier(), "native");
        prop_assert_eq!(v.to_f64(), x);
        prop_assert!(bit_identical(&v.to_bigfloat(), &BigFloat::from_f64(x)));
    }

    #[test]
    fn hdr_from_f64_is_exact(x in proptest::num::f64::NORMAL | proptest::num::f64::SUBNORMAL) {
        let h = HdrFloat::from_f64(x);
        prop_assert_eq!(h.to_f64(), x);
        prop_assert!(bit_identical(&h.to_bigfloat(), &BigFloat::from_f64(x)));
    }
}
