//! Elementary functions: natural logarithm and exponential.
//!
//! These are the two transcendental operations statistical log-space
//! computation rests on (`log_sum_exp` is built from them). Results are
//! faithfully rounded: the working precision carries 32-64 guard bits, so
//! the returned value is within 1 ulp of the exact result at the context
//! precision (tight enough for every experiment in the paper, which
//! compares 64-bit formats against a 256-bit oracle).

use crate::arith::Context;
use crate::limb;
use crate::repr::{BigFloat, Kind, Sign};
use std::sync::Mutex;

static LN2_CACHE: Mutex<Option<BigFloat>> = Mutex::new(None);

impl BigFloat {
    /// Divides by a small unsigned integer, keeping `prec` bits.
    ///
    /// Much cheaper than a full [`Context::div`] and exact up to the final
    /// rounding; used heavily by series evaluation.
    ///
    /// # Panics
    ///
    /// Panics if `d == 0`.
    #[must_use]
    pub fn div_u64(&self, d: u64, prec: u32) -> BigFloat {
        assert!(d != 0, "division by zero");
        let (sign, kind, exp, limbs, _) = self.parts();
        match kind {
            Kind::Zero => return BigFloat::zero(),
            Kind::Inf => return BigFloat::infinity(sign),
            Kind::Nan => return BigFloat::nan(),
            Kind::Normal => {}
        }
        // Extend with two low zero limbs so the quotient keeps full
        // precision even after losing up to 63 bits to the divisor.
        let mut ext = vec![0u64, 0u64];
        ext.extend_from_slice(limbs);
        let top_before = ext.len() as i64 * 64 - 1;
        let rem = limb::div_small_in_place(&mut ext, d);
        let h = limb::highest_bit(&ext).expect("quotient of nonzero by small is nonzero");
        let exp_of_top = exp - (top_before - h as i64);
        BigFloat::from_raw(sign, exp_of_top, ext, rem != 0, prec)
    }
}

/// Computes `ln 2` to at least `prec` bits via `2·atanh(1/3)`.
fn compute_ln2(prec: u32) -> BigFloat {
    let wp = prec + 32;
    // atanh(1/3) = sum_{k>=0} (1/3)^(2k+1) / (2k+1); each term gains
    // log2(9) ~ 3.17 bits.
    let mut u = BigFloat::one().div_u64(3, wp); // (1/3)^(2k+1)
    let mut sum = u.clone();
    let mut k: u64 = 1;
    loop {
        u = u.div_u64(9, wp);
        let term = u.div_u64(2 * k + 1, wp);
        let Some(te) = term.exponent() else { break };
        sum = Context::new(wp).add(&sum, &term);
        if te < -(wp as i64) - 2 {
            break;
        }
        k += 1;
    }
    sum.mul_pow2(1).round_to(prec)
}

/// Returns `ln 2` rounded to `prec` bits (cached across calls).
#[must_use]
pub fn ln2(prec: u32) -> BigFloat {
    // The cached value is always a fully-constructed BigFloat, so a
    // panic elsewhere while the lock was held (e.g. an out-of-range
    // `prec` asserting inside `round_to` below) cannot leave it torn:
    // recover from poisoning instead of propagating it to every later
    // caller.
    {
        let guard = LN2_CACHE
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if let Some(v) = &*guard {
            if v.precision() >= prec {
                return v.round_to(prec);
            }
        }
    }
    // Compute with headroom so repeated small bumps don't recompute.
    let fresh = compute_ln2(prec.max(320) + 64);
    let out = fresh.round_to(prec);
    *LN2_CACHE
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner) = Some(fresh);
    out
}

impl Context {
    /// Natural logarithm, faithfully rounded.
    ///
    /// `ln(0)` is negative infinity; `ln` of a negative number is NaN.
    /// This is the conversion *into* log-space: the paper converts
    /// operands to log-space in MPFR exactly this way.
    #[must_use]
    pub fn ln(&self, x: &BigFloat) -> BigFloat {
        let prec = self.prec();
        match x.kind() {
            Kind::Zero => return BigFloat::infinity(Sign::Neg),
            Kind::Nan => return BigFloat::nan(),
            Kind::Inf => {
                return if x.sign() == Sign::Neg {
                    BigFloat::nan()
                } else {
                    BigFloat::infinity(Sign::Pos)
                };
            }
            Kind::Normal => {}
        }
        if x.sign() == Sign::Neg {
            return BigFloat::nan();
        }
        let e = x.exponent().expect("normal");
        let wp = prec + 64;
        let ctx = Context::new(wp);
        // m in [1, 2). `-e` overflows i64 negation at `e == i64::MIN`
        // (reachable: `2^(i64::MIN)` is a representable BigFloat), so
        // split that one shift into two exact halves.
        let m = if e == i64::MIN {
            x.mul_pow2(i64::MAX).mul_pow2(1)
        } else {
            x.mul_pow2(-e)
        };
        // ln m = 2 atanh(t), t = (m-1)/(m+1) in [0, 1/3).
        let one = BigFloat::one();
        let num = ctx.sub(&m, &one);
        let lnm = if num.is_zero() {
            BigFloat::zero()
        } else {
            let den = ctx.add(&m, &one);
            let t = ctx.div(&num, &den);
            let t2 = ctx.mul(&t, &t);
            let mut u = t.clone();
            let mut sum = t;
            let mut k: u64 = 1;
            loop {
                u = ctx.mul(&u, &t2);
                let term = u.div_u64(2 * k + 1, wp);
                let Some(te) = term.exponent() else { break };
                sum = ctx.add(&sum, &term);
                // sum's exponent is >= t's; stop once terms are dust.
                if te < sum.exponent().unwrap_or(0) - wp as i64 - 2 {
                    break;
                }
                k += 1;
            }
            sum.mul_pow2(1)
        };
        // ln x = ln m + e ln 2.
        let result = if e == 0 {
            lnm
        } else {
            let eln2 = ctx.mul(&BigFloat::from_i64(e), &ln2(wp));
            ctx.add(&lnm, &eln2)
        };
        result.round_to(prec)
    }

    /// Exponential function, faithfully rounded.
    ///
    /// Handles arguments of enormous magnitude (e.g. `exp(-2_010_127)`,
    /// the VICAR log-likelihood) by exact argument reduction
    /// `exp(x) = 2^n · exp(x - n ln 2)`.
    #[must_use]
    pub fn exp(&self, x: &BigFloat) -> BigFloat {
        let prec = self.prec();
        match x.kind() {
            Kind::Zero => return BigFloat::one().round_to(prec),
            Kind::Nan => return BigFloat::nan(),
            Kind::Inf => {
                return if x.sign() == Sign::Neg {
                    BigFloat::zero()
                } else {
                    BigFloat::infinity(Sign::Pos)
                };
            }
            Kind::Normal => {}
        }
        // Guard astronomically large arguments: 2^(x/ln2) with |n| beyond
        // i64 saturates.
        if x.exponent().unwrap_or(0) > 62 {
            return if x.sign() == Sign::Neg {
                BigFloat::zero()
            } else {
                BigFloat::infinity(Sign::Pos)
            };
        }
        let wp = prec + 64;
        let ctx = Context::new(wp);
        let l2 = ln2(wp);
        let n = ctx.div(x, &l2).to_i64_round();
        // r = x - n ln2, |r| <= ln2/2 + tiny.
        let r = ctx.sub(x, &ctx.mul(&BigFloat::from_i64(n), &l2));
        // When |x| > i64::MAX * ln2 (~6.39e18, exponent 62 — just under
        // the guard above), `to_i64_round` saturates, the reduction
        // leaves |r| up to ~2.8e18, and the Taylor loop below would
        // effectively never terminate. A successful reduction always
        // has |r| <= ln2/2 + tiny (exponent <= -1), so any larger
        // remainder is the saturation artifact: the true result is far
        // past 2^(i64::MAX) / below 2^(i64::MIN) either way.
        if r.exponent().unwrap_or(i64::MIN) >= 0 {
            return if x.sign() == Sign::Neg {
                BigFloat::zero()
            } else {
                BigFloat::infinity(Sign::Pos)
            };
        }
        let mut term = BigFloat::one();
        let mut sum = BigFloat::one();
        let mut k: u64 = 1;
        loop {
            term = ctx.mul(&term, &r).div_u64(k, wp);
            let Some(te) = term.exponent() else { break };
            sum = ctx.add(&sum, &term);
            if te < -(wp as i64) - 2 {
                break;
            }
            k += 1;
        }
        sum.mul_pow2(n).round_to(prec)
    }

    /// Base-2 logarithm, via `ln(x)/ln(2)`.
    #[must_use]
    pub fn log2(&self, x: &BigFloat) -> BigFloat {
        let wp = Context::new(self.prec() + 32);
        let l = wp.ln(x);
        if !l.is_finite() {
            return l;
        }
        wp.div(&l, &ln2(self.prec() + 32)).round_to(self.prec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx() -> Context {
        Context::new(256)
    }

    #[test]
    fn ln2_matches_f64_constant() {
        let v = ln2(96);
        assert!((v.to_f64() - core::f64::consts::LN_2).abs() < 1e-16);
    }

    #[test]
    fn ln_matches_f64_ln() {
        for x in [1.0, 2.0, 0.5, 10.0, 0.3, 1e-300, 1e300, 1.0000001] {
            let l = ctx().ln(&BigFloat::from_f64(x));
            let expected = x.ln();
            if expected == 0.0 {
                assert_eq!(l.to_f64(), 0.0);
            } else {
                assert!(
                    (l.to_f64() - expected).abs() <= expected.abs() * 1e-15,
                    "ln({x}) = {} want {expected}",
                    l.to_f64()
                );
            }
        }
    }

    #[test]
    fn exp_matches_f64_exp() {
        for x in [0.0, 1.0, -1.0, 0.5, -20.0, 10.0, 700.0, -700.0] {
            let e = ctx().exp(&BigFloat::from_f64(x));
            let expected = x.exp();
            assert!(
                (e.to_f64() - expected).abs() <= expected.abs() * 1e-14,
                "exp({x}) = {} want {expected}",
                e.to_f64()
            );
        }
    }

    #[test]
    fn ln_exp_round_trip() {
        let c = ctx();
        for x in [0.3, 1.7, 42.0, 1e-10] {
            let b = BigFloat::from_f64(x);
            let back = c.exp(&c.ln(&b));
            let err = (&back - &b).abs();
            // Within ~2 ulp at 256 bits.
            assert!(
                err.is_zero() || err.exponent().unwrap() < b.exponent().unwrap() - 250,
                "round trip {x}"
            );
        }
    }

    #[test]
    fn ln_of_tiny_probability_is_paper_example() {
        // The paper: ln(2^-120_000) ~ -83177.66.
        let x = BigFloat::pow2(-120_000);
        let l = ctx().ln(&x);
        let approx = l.to_f64();
        assert!((approx + 83_177.66).abs() < 0.01, "got {approx}");
    }

    #[test]
    fn exp_of_huge_negative_argument() {
        // The paper: log of 2^-2_900_000 is about -2_010_126.824; exp of
        // that must come back with the right base-2 exponent.
        let l = BigFloat::from_f64(-2_010_126.824);
        let x = ctx().exp(&l);
        let e2 = x.exponent().unwrap();
        assert!((e2 - (-2_900_000)).abs() < 5, "exponent {e2}");
    }

    #[test]
    fn exp_at_the_i64_saturation_threshold() {
        let c = ctx();
        // i64::MAX * ln2 ~ 6.3938e18 (exponent 62). Arguments past it
        // make `to_i64_round` saturate; before the remainder check the
        // Taylor loop on the ~2.8e18 leftover never finished. On both
        // sides of the threshold exp must land on Inf / Zero.
        for mag in [6.4e18, 7.0e18, 9.2e18] {
            let pos = c.exp(&BigFloat::from_f64(mag));
            assert_eq!(pos.kind(), Kind::Inf, "exp({mag})");
            assert_eq!(pos.sign(), Sign::Pos);
            let neg = c.exp(&BigFloat::from_f64(-mag));
            assert!(neg.is_zero(), "exp(-{mag})");
            assert_eq!(neg.sign(), Sign::Pos, "single unsigned zero");
        }
        // Just below the threshold the reduction is legitimate: n is
        // near i64::MAX and the result's base-2 exponent is n exactly
        // (|r| < ln2/2 keeps exp(r) in [2^-1/2, 2^1/2)).
        let x = BigFloat::from_f64(6.3e18);
        let y = Context::new(64).exp(&x);
        let expected_n = (6.3e18 / core::f64::consts::LN_2).round() as i64;
        let got = y.exponent().unwrap();
        // expected_n carries f64 rounding error (~one 1024-ulp step at
        // this magnitude); the exact n is what matters, not its f64
        // estimate.
        assert!(
            (got - expected_n).abs() <= 4096,
            "got {got} want ~{expected_n}"
        );
        // Exponent-63-and-up arguments take the early guard.
        assert_eq!(c.exp(&BigFloat::pow2(63)).kind(), Kind::Inf);
        assert!(c.exp(&BigFloat::pow2(63).neg()).is_zero());
        assert_eq!(c.exp(&BigFloat::pow2(i64::MAX)).kind(), Kind::Inf);
        // And NaN stays NaN through every path.
        assert!(c.exp(&BigFloat::nan()).is_nan());
        assert!(c.ln(&BigFloat::nan()).is_nan());
    }

    #[test]
    fn ln_at_the_exponent_extremes() {
        let c = ctx();
        // 2^(i64::MIN) is representable; normalizing its mantissa used
        // to negate i64::MIN (debug-build panic). ln must return about
        // i64::MIN * ln2 ~ -6.39e18.
        let tiny = BigFloat::pow2(i64::MIN);
        let l = c.ln(&tiny);
        let want = i64::MIN as f64 * core::f64::consts::LN_2;
        let got = l.to_f64();
        assert!(
            ((got - want) / want).abs() < 1e-15,
            "ln(2^i64::MIN) = {got}, want {want}"
        );
        let huge = BigFloat::pow2(i64::MAX);
        let lh = c.ln(&huge).to_f64();
        assert!(((lh + want) / want).abs() < 1e-15, "ln(2^i64::MAX) = {lh}");
    }

    #[test]
    fn ln_specials() {
        let c = ctx();
        assert_eq!(c.ln(&BigFloat::zero()).kind(), Kind::Inf);
        assert_eq!(c.ln(&BigFloat::zero()).sign(), Sign::Neg);
        assert!(c.ln(&BigFloat::from_f64(-1.0)).is_nan());
        assert_eq!(c.ln(&BigFloat::infinity(Sign::Pos)).kind(), Kind::Inf);
        assert!(c.exp(&BigFloat::infinity(Sign::Neg)).is_zero());
        assert_eq!(c.exp(&BigFloat::zero()).to_f64(), 1.0);
    }

    #[test]
    fn log2_recovers_exponent() {
        let c = ctx();
        let x = BigFloat::pow2(-12345);
        assert_eq!(c.log2(&x).to_f64(), -12345.0);
    }

    #[test]
    fn div_u64_exactness() {
        let x = BigFloat::from_u64(12);
        assert_eq!(x.div_u64(4, 64).to_f64(), 3.0);
        let third = BigFloat::one().div_u64(3, 256);
        let back = &third * &BigFloat::from_u64(3);
        let err = (&back - &BigFloat::one()).abs();
        assert!(err.is_zero() || err.exponent().unwrap() < -250);
    }
}
