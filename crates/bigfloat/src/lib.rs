//! # compstat-bigfloat
//!
//! Arbitrary-precision binary floating point — the workspace's stand-in
//! for the 256-bit MPFR oracle used throughout the paper *"Design and
//! accuracy trade-offs in Computational Statistics"* (IISWC 2025).
//!
//! The paper measures every 64-bit number format (binary64, log-space,
//! posit) against results computed at 256-bit precision. This crate
//! provides that reference arithmetic:
//!
//! * [`BigFloat`] — sign + `i64` binary exponent + limb significand, so
//!   magnitudes like `2^-2_900_000` (a VICAR likelihood over 500k sites)
//!   are ordinary values, not underflow.
//! * [`Context`] — MPFR-style rounding contexts; `+ - * /` are correctly
//!   rounded (round to nearest, ties to even), `ln`/`exp` are faithfully
//!   rounded with generous guard bits.
//!
//! # Examples
//!
//! Repeatedly multiplying probabilities, the motivating computation of
//! the paper (binary64 would underflow after 618 iterations at p = 0.3):
//!
//! ```
//! use compstat_bigfloat::{BigFloat, Context};
//!
//! let ctx = Context::new(256);
//! let p = BigFloat::from_f64(0.3);
//! let mut prob = BigFloat::one();
//! for _ in 0..1000 {
//!     prob = ctx.mul(&prob, &p);
//! }
//! // 0.3^1000 = 2^(1000 * log2(0.3)) ~ 2^-1737: far below binary64's
//! // reach, exactly representable here.
//! assert_eq!(prob.exponent(), Some(-1737));
//! assert_eq!(prob.to_f64(), 0.0); // the demotion the paper warns about
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod arith;
mod cmp;
mod convert;
mod elementary;
mod fmt;
pub mod limb;
mod repr;
pub mod serial;
pub mod tiered;

#[doc(hidden)]
pub use arith::testing;
pub use arith::Context;
pub use elementary::ln2;
pub use repr::{BigFloat, Kind, Sign, DEFAULT_PREC, MAX_PREC, MIN_PREC};
pub use serial::{bit_identical, SerialError};
pub use tiered::{HdrFloat, Tiered, TieredCtx, HDR_FAST_PREC, NATIVE_EXP_LIMIT};
