//! Tiered-precision arithmetic: binary64 speed wherever 53 bits of
//! precision suffice, [`BigFloat`] above, behind one context surface.
//!
//! The paper's methodology compares cheap 64-bit formats against a
//! 256-bit oracle, and every rung of that comparison below the oracle
//! pays full limb-arithmetic price even when the *values* would fit a
//! hardware double. This module stops that: a [`TieredCtx`] built at
//! `prec <= 53` computes with hardware `f64` arithmetic (an
//! [`HdrFloat`] — "high dynamic range" float — when only *range*, not
//! precision, exceeds binary64), and a context above 53 bits delegates
//! to [`Context`] unchanged. Callers see one `add`/`sub`/`mul`/`div`/
//! `sum`/`ln`/`exp` surface either way.
//!
//! # The tiers
//!
//! * [`Tiered::Native`] — a plain `f64`. Used for zero, NaN, the
//!   infinities, and any finite value whose base-2 exponent is within
//!   [`NATIVE_EXP_LIMIT`] of zero (comfortably inside binary64's
//!   normal range, so no operation between two such values can brush
//!   the subnormal double-rounding zone before the seam re-checks).
//! * [`Tiered::Hdr`] — an [`HdrFloat`]: a normalized `f64` mantissa
//!   with magnitude in `[1, 2)` plus an `i64` software exponent, so
//!   `2^-2_900_000` (a VICAR likelihood) is an ordinary value costing
//!   one hardware multiply per operation.
//! * [`Tiered::Big`] — a [`BigFloat`], for contexts above 53 bits.
//!
//! # Bit-for-bit contract
//!
//! The fast tier is not "approximately" the 53-bit [`Context`]: for
//! `add`/`sub`/`mul`/`div`/`sum` it produces **bit-identical** results
//! to `Context::new(53)` on the same operands, across the entire `i64`
//! exponent range. This works because IEEE 754 binary64 arithmetic
//! *is* correctly-rounded 53-bit arithmetic whenever operands and
//! results stay in the normal range — which the seam guarantees by
//! keeping mantissas normalized in `[1, 2)` and doing exponent
//! arithmetic in `i128`, saturating to the signed infinity (overflow)
//! or the single unsigned zero (underflow) exactly as
//! `BigFloat::from_raw_wide` does. `ln`/`exp` delegate to the bigfloat
//! elementary kernels at the context precision (they are faithfully
//! rounded, and rare next to the add/mul inner loops the paper's
//! workloads are made of), so they too match the `Context` path
//! bit for bit.
//!
//! A context built at `prec < 53` still computes at binary64's native
//! 53 bits — a superset of the requested precision, mirroring
//! fractalwonder's "plain f64 below the threshold" tiering. The
//! differential test contract is stated at exactly `prec == 53`.

use crate::arith::Context;
use crate::repr::{BigFloat, Kind, Sign, MAX_PREC, MIN_PREC};
use std::borrow::Cow;

/// Largest context precision served by the fast (`f64`-mantissa) tier.
pub const HDR_FAST_PREC: u32 = 53;

/// A finite nonzero [`Tiered`] value stays [`Tiered::Native`] while its
/// base-2 exponent magnitude is at most this; beyond it the value is
/// promoted to [`Tiered::Hdr`]. The limit keeps every native-tier
/// operation (whose result exponent moves by at most ~`2 * limit + 1`)
/// far from binary64's subnormal range, where hardware rounding is
/// *not* 53-bit rounding.
pub const NATIVE_EXP_LIMIT: i64 = 500;

/// `2^k` as an `f64`, exact. `k` must be in the normal range.
#[inline]
fn exp2i(k: i64) -> f64 {
    debug_assert!((-1022..=1023).contains(&k), "exp2i({k}) out of range");
    f64::from_bits(((1023 + k) as u64) << 52)
}

/// An "HDR float": a normalized binary64 mantissa (magnitude in
/// `[1, 2)`, sign carried by the mantissa) with a separate `i64` binary
/// exponent, so the dynamic range is that of [`BigFloat`] while every
/// arithmetic operation is one or two hardware `f64` instructions.
///
/// Specials are canonical: zero is `(+0.0, 0)`, NaN is `(NaN, 0)`, the
/// infinities are `(±inf, 0)` — matching `BigFloat`'s single unsigned
/// zero and unsigned NaN once converted.
///
/// `add`/`mul`/`div` are correctly rounded to 53 significant bits of
/// the *result* (round to nearest, ties to even) with the exponent
/// computed in `i128` and saturated to `Inf`/zero exactly as the
/// bigfloat rounding core does — see the module docs for why this is
/// bit-identical to `Context::new(53)`.
#[derive(Clone, Copy, Debug)]
pub struct HdrFloat {
    /// Mantissa: magnitude in `[1, 2)` for finite nonzero values;
    /// `±0.0`, `±inf`, or NaN for the specials (exponent 0).
    m: f64,
    /// Base-2 exponent: the value is `m * 2^e`.
    e: i64,
}

impl PartialEq for HdrFloat {
    /// IEEE-style equality: NaN compares unequal to everything
    /// (mirroring `f64`), specials and normals compare by value.
    fn eq(&self, other: &Self) -> bool {
        self.m == other.m && (self.e == other.e || self.m == 0.0 || self.m.is_infinite())
    }
}

impl HdrFloat {
    /// The canonical zero (unsigned, like `BigFloat`'s).
    pub const ZERO: HdrFloat = HdrFloat { m: 0.0, e: 0 };
    /// One.
    pub const ONE: HdrFloat = HdrFloat { m: 1.0, e: 0 };
    /// Not-a-number.
    pub const NAN: HdrFloat = HdrFloat { m: f64::NAN, e: 0 };

    /// Signed infinity.
    #[must_use]
    pub fn infinity(sign: Sign) -> HdrFloat {
        HdrFloat {
            m: sign.to_f64() * f64::INFINITY,
            e: 0,
        }
    }

    /// The mantissa (`[1, 2)` magnitude for finite nonzero values).
    #[must_use]
    pub fn mantissa(&self) -> f64 {
        self.m
    }

    /// True if the value is exactly zero.
    #[must_use]
    pub fn is_zero(&self) -> bool {
        self.m == 0.0
    }

    /// True if the value is NaN.
    #[must_use]
    pub fn is_nan(&self) -> bool {
        self.m.is_nan()
    }

    /// True if the value is `±inf`.
    #[must_use]
    pub fn is_inf(&self) -> bool {
        self.m.is_infinite()
    }

    /// True if finite and nonzero (the normal case).
    #[must_use]
    pub fn is_normal(&self) -> bool {
        self.m.is_finite() && self.m != 0.0
    }

    /// Base-2 exponent of the value (`None` for zero/inf/NaN), the
    /// same quantity [`BigFloat::exponent`] reports.
    #[must_use]
    pub fn exponent(&self) -> Option<i64> {
        self.is_normal().then_some(self.e)
    }

    /// The sign; zero and NaN report positive, like `BigFloat`.
    #[must_use]
    pub fn sign(&self) -> Sign {
        if self.is_normal() || self.is_inf() {
            if self.m < 0.0 {
                Sign::Neg
            } else {
                Sign::Pos
            }
        } else {
            Sign::Pos
        }
    }

    /// Normalizes a finite nonzero **normal-range** `f64` times `2^e`
    /// into canonical form, saturating the exponent exactly as
    /// `BigFloat::from_raw_wide` does: overflow becomes the signed
    /// infinity, underflow the single unsigned zero.
    fn norm(m: f64, e: i128) -> HdrFloat {
        debug_assert!(m.is_finite() && m != 0.0);
        let bits = m.to_bits();
        let biased = (bits >> 52) & 0x7FF;
        debug_assert!(biased != 0, "norm() requires a normal f64");
        let k = biased as i128 - 1023;
        let mantissa = f64::from_bits((bits & !(0x7FFu64 << 52)) | (1023u64 << 52));
        let e2 = e + k;
        if e2 > i64::MAX as i128 {
            return HdrFloat::infinity(if m < 0.0 { Sign::Neg } else { Sign::Pos });
        }
        if e2 < i64::MIN as i128 {
            return HdrFloat::ZERO;
        }
        HdrFloat {
            m: mantissa,
            e: e2 as i64,
        }
    }

    /// Exact conversion from an `f64` (specials map to the canonical
    /// specials; subnormals are rescaled exactly).
    #[must_use]
    pub fn from_f64(x: f64) -> HdrFloat {
        if x == 0.0 {
            return HdrFloat::ZERO;
        }
        if x.is_nan() {
            return HdrFloat::NAN;
        }
        if x.is_infinite() {
            return HdrFloat { m: x, e: 0 };
        }
        if x.abs() < f64::MIN_POSITIVE {
            // Subnormal: scale into the normal range first (exact).
            return HdrFloat::norm(x * exp2i(64), -64);
        }
        HdrFloat::norm(x, 0)
    }

    /// Conversion from a [`BigFloat`], rounding to 53 bits (round to
    /// nearest, ties to even) — the value a 53-bit context would hold.
    /// Exact when `x` already carries at most 53 bits.
    #[must_use]
    pub fn from_bigfloat(x: &BigFloat) -> HdrFloat {
        match x.kind() {
            Kind::Zero => return HdrFloat::ZERO,
            Kind::Nan => return HdrFloat::NAN,
            Kind::Inf => return HdrFloat::infinity(x.sign()),
            Kind::Normal => {}
        }
        let r = x.round_to(53);
        let Some(e) = r.exponent() else {
            // 53-bit rounding of a normal stays normal.
            unreachable!("round_to(53) of a normal is normal");
        };
        // Scale the mantissa to the unit binade. `-e` overflows i64
        // negation when `e == i64::MIN`, so split that shift in two
        // exact steps (this is the promotion/demotion inconsistency
        // the tier seam must not observe).
        let unit = if e == i64::MIN {
            r.mul_pow2(i64::MAX).mul_pow2(1)
        } else {
            r.mul_pow2(-e)
        };
        debug_assert_eq!(unit.exponent(), Some(0));
        HdrFloat {
            m: unit.to_f64(),
            e,
        }
    }

    /// Exact conversion to a [`BigFloat`] (53 significant bits;
    /// specials carry a 53-bit precision tag so round-trips through a
    /// 53-bit [`Context`] are bit-identical).
    #[must_use]
    pub fn to_bigfloat(&self) -> BigFloat {
        if self.is_normal() {
            // `m` has exponent 0, so `mul_pow2(e)` cannot saturate.
            BigFloat::from_f64(self.m).mul_pow2(self.e)
        } else {
            BigFloat::from_f64(self.m).round_to(53)
        }
    }

    /// Conversion to the nearest `f64`, with IEEE overflow/underflow —
    /// the "cast down to binary64" step of the paper, where
    /// `2^-2_900_000` correctly collapses to `0.0`.
    #[must_use]
    pub fn to_f64(&self) -> f64 {
        if !self.is_normal() {
            return self.m;
        }
        if (-1020..=1020).contains(&self.e) {
            // Comfortably normal: the exact product.
            return self.m * exp2i(self.e);
        }
        // Near or past the f64 boundary: go through BigFloat's
        // carefully-rounded conversion (subnormal rounding is not
        // 53-bit rounding, so a naive scale would double-round).
        self.to_bigfloat().to_f64()
    }
}

/// Negation (exact; zero and NaN are unchanged, like
/// [`BigFloat::neg`]).
impl core::ops::Neg for HdrFloat {
    type Output = HdrFloat;

    fn neg(self) -> HdrFloat {
        if self.is_zero() || self.is_nan() {
            self
        } else {
            HdrFloat {
                m: -self.m,
                e: self.e,
            }
        }
    }
}

/// Addition, correctly rounded to 53 bits of the result.
impl core::ops::Add for HdrFloat {
    type Output = HdrFloat;

    fn add(self, other: HdrFloat) -> HdrFloat {
        // Specials first (their exponents are canonical 0 and must not
        // enter the alignment logic). f64 addition of the special
        // mantissas reproduces BigFloat's table: NaN propagates,
        // inf + (-inf) is NaN, inf + finite is inf.
        if self.m.is_nan() || other.m.is_nan() {
            return HdrFloat::NAN;
        }
        match (self.m.is_infinite(), other.m.is_infinite()) {
            (true, true) => {
                let s = self.m + other.m;
                return if s.is_nan() {
                    HdrFloat::NAN
                } else {
                    HdrFloat { m: s, e: 0 }
                };
            }
            (true, false) => return self,
            (false, true) => return other,
            (false, false) => {}
        }
        if self.is_zero() {
            return other;
        }
        if other.is_zero() {
            return self;
        }
        let (hi, lo) = if self.e >= other.e {
            (self, other)
        } else {
            (other, self)
        };
        let d = hi.e as i128 - lo.e as i128;
        if d >= 55 {
            // |lo| < 2^(hi.e - 54): strictly below half an ulp of hi
            // (below a quarter when hi is a power of two and lo has
            // the opposite sign), so the correctly-rounded sum is
            // exactly hi. This is the step that makes exponent gaps of
            // millions of binades free.
            return hi;
        }
        // d <= 54: scaling lo's mantissa by 2^-d is exact (the result
        // is >= 2^-54, far above the subnormal range), so the hardware
        // add is a single correct 53-bit rounding of the exact sum.
        let s = hi.m + lo.m * exp2i(-(d as i64));
        if s == 0.0 {
            // Exact cancellation: the single unsigned zero.
            return HdrFloat::ZERO;
        }
        HdrFloat::norm(s, hi.e as i128)
    }
}

/// Subtraction, correctly rounded to 53 bits of the result.
impl core::ops::Sub for HdrFloat {
    type Output = HdrFloat;

    fn sub(self, other: HdrFloat) -> HdrFloat {
        self + (-other)
    }
}

/// Multiplication, correctly rounded to 53 bits of the result.
impl core::ops::Mul for HdrFloat {
    type Output = HdrFloat;

    fn mul(self, other: HdrFloat) -> HdrFloat {
        let p = self.m * other.m;
        if !p.is_finite() || p == 0.0 {
            // Only special inputs reach here (mantissas are in [1, 4)
            // otherwise): NaN propagates, inf * 0 is NaN, inf * x is
            // the signed infinity, 0 * x the unsigned zero — the
            // BigFloat table exactly.
            if p.is_nan() {
                return HdrFloat::NAN;
            }
            if p == 0.0 {
                return HdrFloat::ZERO;
            }
            return HdrFloat { m: p, e: 0 };
        }
        HdrFloat::norm(p, self.e as i128 + other.e as i128)
    }
}

/// Division, correctly rounded to 53 bits of the result.
impl core::ops::Div for HdrFloat {
    type Output = HdrFloat;

    fn div(self, other: HdrFloat) -> HdrFloat {
        let q = self.m / other.m;
        if !q.is_finite() || q == 0.0 {
            // Special inputs only (mantissa quotients are in (1/2, 2)
            // otherwise): NaN propagates, inf/inf and 0/0 are NaN,
            // x/0 and inf/x the signed infinity, 0/x and x/inf the
            // unsigned zero — matching BigFloat's division table.
            if q.is_nan() {
                return HdrFloat::NAN;
            }
            if q == 0.0 {
                return HdrFloat::ZERO;
            }
            return HdrFloat { m: q, e: 0 };
        }
        HdrFloat::norm(q, self.e as i128 - other.e as i128)
    }
}

/// A value of the tiered backend — see the module docs for when each
/// variant is used.
#[derive(Clone, Debug, PartialEq)]
pub enum Tiered {
    /// A plain `f64`: zero, NaN, the infinities, or a finite value
    /// whose exponent magnitude is at most [`NATIVE_EXP_LIMIT`].
    Native(f64),
    /// Range (not precision) exceeds binary64: f64 mantissa plus
    /// software exponent.
    Hdr(HdrFloat),
    /// Full arbitrary-precision value (contexts above 53 bits).
    Big(BigFloat),
}

impl Tiered {
    /// The exact value as a [`BigFloat`] (53-bit tagged in the fast
    /// tier, the wrapped value unchanged in the big tier).
    #[must_use]
    pub fn to_bigfloat(&self) -> BigFloat {
        match self {
            Tiered::Native(x) => HdrFloat::from_f64(*x).to_bigfloat(),
            Tiered::Hdr(h) => h.to_bigfloat(),
            Tiered::Big(b) => b.clone(),
        }
    }

    /// The nearest `f64` (IEEE overflow/underflow at the range edges).
    #[must_use]
    pub fn to_f64(&self) -> f64 {
        match self {
            Tiered::Native(x) => *x,
            Tiered::Hdr(h) => h.to_f64(),
            Tiered::Big(b) => b.to_f64(),
        }
    }

    /// Base-2 exponent (`None` for zero/inf/NaN) — the quantity the
    /// figure 1/3/9 x-axes plot.
    #[must_use]
    pub fn exponent(&self) -> Option<i64> {
        match self {
            Tiered::Native(x) => HdrFloat::from_f64(*x).exponent(),
            Tiered::Hdr(h) => h.exponent(),
            Tiered::Big(b) => b.exponent(),
        }
    }

    /// True if the value is exactly zero.
    #[must_use]
    pub fn is_zero(&self) -> bool {
        match self {
            Tiered::Native(x) => *x == 0.0,
            Tiered::Hdr(h) => h.is_zero(),
            Tiered::Big(b) => b.is_zero(),
        }
    }

    /// True if the value is NaN.
    #[must_use]
    pub fn is_nan(&self) -> bool {
        match self {
            Tiered::Native(x) => x.is_nan(),
            Tiered::Hdr(h) => h.is_nan(),
            Tiered::Big(b) => b.is_nan(),
        }
    }

    /// The storage tier, for diagnostics: `"native"`, `"hdr"`, or
    /// `"big"`.
    #[must_use]
    pub fn tier(&self) -> &'static str {
        match self {
            Tiered::Native(_) => "native",
            Tiered::Hdr(_) => "hdr",
            Tiered::Big(_) => "big",
        }
    }
}

/// Re-tiers a fast-tier result: specials and comfortably-ranged values
/// demote to [`Tiered::Native`], everything else stays [`Tiered::Hdr`].
/// This is the single promotion/demotion point, so the two storage
/// forms can never disagree about a value.
fn canon_fast(h: HdrFloat) -> Tiered {
    if !h.is_normal() {
        // Canonical specials (+0.0 for zero; HdrFloat already
        // normalized the rest).
        return Tiered::Native(if h.is_zero() { 0.0 } else { h.mantissa() });
    }
    if h.e.abs() <= NATIVE_EXP_LIMIT {
        // Exact: |e| <= 500 keeps the product normal.
        return Tiered::Native(h.mantissa() * exp2i(h.e));
    }
    Tiered::Hdr(h)
}

/// The fast-tier view of any [`Tiered`] value. A [`Tiered::Big`]
/// operand reaching a fast context is rounded to 53 bits here — the
/// context's tier, like handing a 256-bit value to `Context::new(53)`.
fn as_hdr(v: &Tiered) -> HdrFloat {
    match v {
        Tiered::Native(x) => HdrFloat::from_f64(*x),
        Tiered::Hdr(h) => *h,
        Tiered::Big(b) => HdrFloat::from_bigfloat(b),
    }
}

/// The big-tier view of any [`Tiered`] value, borrowing when possible.
fn as_big(v: &Tiered) -> Cow<'_, BigFloat> {
    match v {
        Tiered::Big(b) => Cow::Borrowed(b),
        other => Cow::Owned(other.to_bigfloat()),
    }
}

/// A precision-tagged arithmetic context over [`Tiered`] values — the
/// same surface as [`Context`], with the tier chosen by precision:
/// `prec <= 53` runs on hardware `f64` (bit-identical to
/// `Context::new(53)`, see the module docs), `prec > 53` delegates to
/// `Context::new(prec)` and is bit-identical by construction.
///
/// # Examples
///
/// ```
/// use compstat_bigfloat::tiered::TieredCtx;
///
/// let ctx = TieredCtx::new(53); // fast tier
/// let p = ctx.from_f64(0.3);
/// let mut prob = ctx.from_f64(1.0);
/// for _ in 0..1000 {
///     prob = ctx.mul(&prob, &p);
/// }
/// // 0.3^1000 ~ 2^-1737: binary64 would have underflowed at
/// // iteration 618; the tiered value promoted to the HDR form and
/// // kept going at native speed.
/// assert_eq!(prob.exponent(), Some(-1737));
/// assert_eq!(prob.tier(), "hdr");
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TieredCtx {
    prec: u32,
}

impl TieredCtx {
    /// Creates a context with the given precision in bits.
    ///
    /// # Panics
    ///
    /// Panics if `prec` is outside `[2, 16384]` (the same domain as
    /// [`Context::new`]).
    #[must_use]
    pub fn new(prec: u32) -> TieredCtx {
        assert!(
            (MIN_PREC..=MAX_PREC).contains(&prec),
            "precision {prec} out of [2, 16384]"
        );
        TieredCtx { prec }
    }

    /// The requested precision in bits (the fast tier serves requests
    /// at or below 53 with exactly 53 bits).
    #[must_use]
    pub fn prec(&self) -> u32 {
        self.prec
    }

    /// True if this context runs on the hardware fast tier.
    #[must_use]
    pub fn is_fast(&self) -> bool {
        self.prec <= HDR_FAST_PREC
    }

    fn big_ctx(&self) -> Context {
        Context::new(self.prec)
    }

    /// The additive identity in this context's tier.
    #[must_use]
    pub fn zero(&self) -> Tiered {
        if self.is_fast() {
            Tiered::Native(0.0)
        } else {
            Tiered::Big(BigFloat::zero())
        }
    }

    /// Imports an `f64` exactly (binary64 carries at most 53 bits, so
    /// no tier rounds it). In the big tier the value keeps its own
    /// 53-bit precision tag, exactly as `BigFloat::from_f64` operands
    /// do under a [`Context`].
    #[must_use]
    pub fn from_f64(&self, x: f64) -> Tiered {
        if self.is_fast() {
            canon_fast(HdrFloat::from_f64(x))
        } else {
            Tiered::Big(BigFloat::from_f64(x))
        }
    }

    /// Imports a [`BigFloat`]. The fast tier rounds to its 53 bits
    /// (that is what entering a 53-bit context means); the big tier
    /// preserves the operand bits exactly, as [`Context`] callers do.
    #[must_use]
    pub fn from_bigfloat(&self, x: &BigFloat) -> Tiered {
        if self.is_fast() {
            canon_fast(HdrFloat::from_bigfloat(x))
        } else {
            Tiered::Big(x.clone())
        }
    }

    /// Addition, correctly rounded to the context precision.
    #[must_use]
    pub fn add(&self, a: &Tiered, b: &Tiered) -> Tiered {
        if self.is_fast() {
            canon_fast(as_hdr(a) + as_hdr(b))
        } else {
            Tiered::Big(self.big_ctx().add(&as_big(a), &as_big(b)))
        }
    }

    /// Subtraction, correctly rounded to the context precision.
    #[must_use]
    pub fn sub(&self, a: &Tiered, b: &Tiered) -> Tiered {
        if self.is_fast() {
            canon_fast(as_hdr(a) - as_hdr(b))
        } else {
            Tiered::Big(self.big_ctx().sub(&as_big(a), &as_big(b)))
        }
    }

    /// Multiplication, correctly rounded to the context precision.
    #[must_use]
    pub fn mul(&self, a: &Tiered, b: &Tiered) -> Tiered {
        if self.is_fast() {
            canon_fast(as_hdr(a) * as_hdr(b))
        } else {
            Tiered::Big(self.big_ctx().mul(&as_big(a), &as_big(b)))
        }
    }

    /// Division, correctly rounded to the context precision.
    #[must_use]
    pub fn div(&self, a: &Tiered, b: &Tiered) -> Tiered {
        if self.is_fast() {
            canon_fast(as_hdr(a) / as_hdr(b))
        } else {
            Tiered::Big(self.big_ctx().div(&as_big(a), &as_big(b)))
        }
    }

    /// Sums a sequence left-to-right, rounding after each partial sum —
    /// the same associativity as [`Context::sum`], so the big tier is
    /// bit-identical to it and the fast tier to its 53-bit instance.
    #[must_use]
    pub fn sum<'a, I: IntoIterator<Item = &'a Tiered>>(&self, values: I) -> Tiered {
        let mut acc = self.zero();
        for v in values {
            acc = self.add(&acc, v);
        }
        acc
    }

    /// Natural logarithm, faithfully rounded ([`Context::ln`] at the
    /// context precision in both tiers; `ln` is a conversion-time
    /// operation, not an inner-loop one, so the fast tier trades a
    /// bigfloat call for exact parity with the `Context` path).
    #[must_use]
    pub fn ln(&self, x: &Tiered) -> Tiered {
        if self.is_fast() {
            let r = Context::new(HDR_FAST_PREC).ln(&as_hdr(x).to_bigfloat());
            canon_fast(HdrFloat::from_bigfloat(&r))
        } else {
            Tiered::Big(self.big_ctx().ln(&as_big(x)))
        }
    }

    /// Exponential, faithfully rounded (same delegation as
    /// [`TieredCtx::ln`]; the full HDR argument range is handled by
    /// the bigfloat kernel's saturating argument reduction).
    #[must_use]
    pub fn exp(&self, x: &Tiered) -> Tiered {
        if self.is_fast() {
            let r = Context::new(HDR_FAST_PREC).exp(&as_hdr(x).to_bigfloat());
            canon_fast(HdrFloat::from_bigfloat(&r))
        } else {
            Tiered::Big(self.big_ctx().exp(&as_big(x)))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::serial::bit_identical;

    fn ctx53() -> Context {
        Context::new(53)
    }

    fn hdr_of(m: f64, e: i64) -> HdrFloat {
        let h = HdrFloat::from_f64(m);
        assert!(h.is_normal());
        HdrFloat::from_bigfloat(&h.to_bigfloat().mul_pow2(e - h.exponent().unwrap()))
    }

    #[test]
    fn specials_are_canonical() {
        assert!(HdrFloat::from_f64(0.0).is_zero());
        assert!(HdrFloat::from_f64(-0.0).is_zero());
        assert_eq!(HdrFloat::from_f64(-0.0).sign(), Sign::Pos);
        assert!(HdrFloat::from_f64(f64::NAN).is_nan());
        assert!(HdrFloat::from_f64(f64::INFINITY).is_inf());
        assert_eq!(HdrFloat::from_f64(f64::NEG_INFINITY).sign(), Sign::Neg);
    }

    #[test]
    fn from_f64_round_trips_exactly() {
        for x in [
            1.0,
            -1.0,
            0.3,
            1.5e308,
            -2.2e-308,
            f64::MIN_POSITIVE,
            f64::from_bits(1), // min subnormal
            f64::EPSILON,
            123456.789,
        ] {
            let h = HdrFloat::from_f64(x);
            assert_eq!(h.to_f64(), x, "round-trip {x}");
            assert!(bit_identical(&h.to_bigfloat(), &BigFloat::from_f64(x)));
        }
    }

    #[test]
    fn huge_exponents_are_ordinary_values() {
        let tiny = hdr_of(1.5, -2_900_000);
        assert_eq!(tiny.exponent(), Some(-2_900_000));
        assert_eq!(tiny.to_f64(), 0.0); // the paper's binary64 demotion
        let back = HdrFloat::from_bigfloat(&tiny.to_bigfloat());
        assert_eq!(back, tiny);
    }

    #[test]
    fn add_matches_53bit_context_on_alignment_edges() {
        let c = ctx53();
        // Alignment distances around the drop-the-small-operand
        // threshold, including the power-of-two / opposite-sign case
        // that needs d >= 55 rather than 54.
        for d in [0, 1, 52, 53, 54, 55, 56, 120] {
            for (ma, mb) in [(1.0, 1.0), (1.5, 1.25), (1.0, 1.9999999999999998)] {
                for (sa, sb) in [(1.0, 1.0), (1.0, -1.0), (-1.0, 1.0)] {
                    let a = hdr_of(sa * ma, 0);
                    let b = hdr_of(sb * mb, -d);
                    let want = c.add(&a.to_bigfloat(), &b.to_bigfloat());
                    let got = (a + b).to_bigfloat();
                    assert!(
                        bit_identical(&got.round_to(53), &want.round_to(53)),
                        "d={d} ma={ma} mb={mb} sa={sa} sb={sb}"
                    );
                }
            }
        }
    }

    #[test]
    fn exponent_saturation_mirrors_bigfloat() {
        let c = ctx53();
        let top = hdr_of(1.9, i64::MAX);
        // Doubling the largest-exponent value overflows to +inf in
        // both arithmetics.
        let want = c.add(&top.to_bigfloat(), &top.to_bigfloat());
        let got = top + top;
        assert_eq!(want.kind(), Kind::Inf);
        assert!(got.is_inf());
        assert_eq!(got.sign(), want.sign());
        // Squaring the smallest-exponent value underflows to the
        // single unsigned zero in both.
        let bottom = hdr_of(1.0, i64::MIN / 2 - 1);
        let wantz = c.mul(&bottom.to_bigfloat(), &bottom.to_bigfloat());
        let gotz = bottom * bottom;
        assert!(wantz.is_zero() && gotz.is_zero());
        assert_eq!(gotz.sign(), Sign::Pos);
        // Division in the other direction overflows.
        let wanti = c.div(&top.to_bigfloat(), &bottom.to_bigfloat());
        let goti = top / bottom;
        assert_eq!(wanti.kind(), Kind::Inf);
        assert!(goti.is_inf());
    }

    #[test]
    fn special_tables_match_bigfloat() {
        let c = ctx53();
        let vals = [
            HdrFloat::ZERO,
            HdrFloat::ONE,
            -HdrFloat::ONE,
            HdrFloat::infinity(Sign::Pos),
            HdrFloat::infinity(Sign::Neg),
            HdrFloat::NAN,
            hdr_of(1.25, -100_000),
        ];
        for a in vals {
            for b in vals {
                let (ab, bb) = (a.to_bigfloat(), b.to_bigfloat());
                for (name, got, want) in [
                    ("add", a + b, c.add(&ab, &bb)),
                    ("sub", a - b, c.sub(&ab, &bb)),
                    ("mul", a * b, c.mul(&ab, &bb)),
                    ("div", a / b, c.div(&ab, &bb)),
                ] {
                    let got = got.to_bigfloat();
                    assert!(
                        bit_identical(&got.round_to(53), &want.round_to(53)),
                        "{name}({a:?}, {b:?}) = {got:?}, want {want:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn tier_selection_and_promotion() {
        let ctx = TieredCtx::new(53);
        assert!(ctx.is_fast());
        assert_eq!(ctx.from_f64(0.3).tier(), "native");
        assert_eq!(ctx.from_f64(0.0).tier(), "native");
        assert_eq!(ctx.from_f64(f64::NAN).tier(), "native");
        // Crossing NATIVE_EXP_LIMIT promotes; coming back demotes.
        let edge = ctx.from_bigfloat(&BigFloat::pow2(NATIVE_EXP_LIMIT));
        assert_eq!(edge.tier(), "native");
        let past = ctx.from_bigfloat(&BigFloat::pow2(NATIVE_EXP_LIMIT + 1));
        assert_eq!(past.tier(), "hdr");
        let back = ctx.div(&past, &ctx.from_f64(2.0));
        assert_eq!(back.tier(), "native");
        assert!(bit_identical(
            &back.to_bigfloat(),
            &BigFloat::pow2(NATIVE_EXP_LIMIT).round_to(53)
        ));
        // A >53-bit context is the big tier.
        let big = TieredCtx::new(192);
        assert!(!big.is_fast());
        assert_eq!(big.from_f64(0.3).tier(), "big");
    }

    #[test]
    fn big_tier_is_context_bit_for_bit() {
        let tctx = TieredCtx::new(192);
        let c = Context::new(192);
        let a = BigFloat::from_f64(0.3);
        let b = BigFloat::from_f64(0.7);
        let (ta, tb) = (tctx.from_bigfloat(&a), tctx.from_bigfloat(&b));
        assert!(bit_identical(
            &tctx.add(&ta, &tb).to_bigfloat(),
            &c.add(&a, &b)
        ));
        assert!(bit_identical(
            &tctx.mul(&ta, &tb).to_bigfloat(),
            &c.mul(&a, &b)
        ));
        assert!(bit_identical(
            &tctx.div(&ta, &tb).to_bigfloat(),
            &c.div(&a, &b)
        ));
        assert!(bit_identical(&tctx.ln(&ta).to_bigfloat(), &c.ln(&a)));
        assert!(bit_identical(&tctx.exp(&ta).to_bigfloat(), &c.exp(&a)));
        let vs = [ta, tb];
        assert!(bit_identical(
            &tctx.sum(vs.iter()).to_bigfloat(),
            &c.sum([&a, &b])
        ));
    }

    #[test]
    fn fast_ln_exp_match_53bit_context() {
        let tctx = TieredCtx::new(53);
        let c = ctx53();
        for x in [0.3, 1.0, 42.0, 1e-200] {
            let t = tctx.from_f64(x);
            let b = BigFloat::from_f64(x);
            assert!(bit_identical(
                &tctx.ln(&t).to_bigfloat().round_to(53),
                &c.ln(&b).round_to(53)
            ));
            assert!(bit_identical(
                &tctx.exp(&t).to_bigfloat().round_to(53),
                &c.exp(&b).round_to(53)
            ));
        }
        // exp of an HDR-range log value lands at an HDR-range result.
        let l = tctx.from_f64(-2_010_126.824);
        let e = tctx.exp(&l);
        assert_eq!(e.tier(), "hdr");
        let e2 = e.exponent().unwrap();
        assert!((e2 - (-2_900_000)).abs() < 5, "exponent {e2}");
    }

    #[test]
    fn sum_matches_context_associativity() {
        let tctx = TieredCtx::new(53);
        let c = ctx53();
        let xs: Vec<f64> = (1..40).map(|i| (i as f64) * 0.137).collect();
        let tv: Vec<Tiered> = xs.iter().map(|&x| tctx.from_f64(x)).collect();
        let bv: Vec<BigFloat> = xs.iter().map(|&x| BigFloat::from_f64(x)).collect();
        let got = tctx.sum(tv.iter()).to_bigfloat();
        let want = c.sum(bv.iter());
        assert!(bit_identical(&got.round_to(53), &want.round_to(53)));
    }
}
