//! Exact binary serialization of [`BigFloat`] values.
//!
//! The oracle cache persists 256-bit (and higher) oracle results across
//! runs, so the on-disk form must reconstruct *every bit* of the value:
//! routing through `to_f64` would collapse the sub-`2^-1074` magnitudes
//! the whole evaluation is about. This module writes the representation
//! itself — sign, kind, binary exponent, precision, and the raw
//! significand limbs — and reads it back without normalizing or
//! rounding, so `read_bytes(write_bytes(x)) == x` limb for limb.
//!
//! ## Wire format (little-endian throughout)
//!
//! ```text
//! byte 0        tag: bits 0-1 kind (0 zero, 1 normal, 2 inf, 3 nan),
//!               bit 4 sign (set = negative); other bits must be zero
//! bytes 1..5    precision in bits (u32)
//! -- Normal values only --
//! bytes 5..13   binary exponent (i64)
//! bytes 13..    ceil(prec/64) significand limbs (u64 each)
//! ```
//!
//! [`BigFloat::read_bytes`] validates everything the representation
//! invariants require (precision range, limb count, normalized top bit,
//! cleared sub-precision bits), so corrupt or truncated input is a
//! [`SerialError`], never a silently wrong value.

use crate::repr::{BigFloat, Kind, Sign, MAX_PREC, MIN_PREC};

/// A failure while decoding serialized [`BigFloat`] bytes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SerialError {
    /// What was malformed.
    pub message: String,
}

impl SerialError {
    fn new(message: impl Into<String>) -> SerialError {
        SerialError {
            message: message.into(),
        }
    }
}

impl core::fmt::Display for SerialError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "bigfloat deserialization: {}", self.message)
    }
}

impl std::error::Error for SerialError {}

const TAG_KIND_MASK: u8 = 0b0000_0011;
const TAG_SIGN_NEG: u8 = 0b0001_0000;

fn kind_code(kind: Kind) -> u8 {
    match kind {
        Kind::Zero => 0,
        Kind::Normal => 1,
        Kind::Inf => 2,
        Kind::Nan => 3,
    }
}

impl BigFloat {
    /// Appends the exact binary encoding of this value to `out` (see
    /// the [module docs](self) for the wire format).
    pub fn write_bytes(&self, out: &mut Vec<u8>) {
        let mut tag = kind_code(self.kind());
        if self.sign() == Sign::Neg {
            tag |= TAG_SIGN_NEG;
        }
        out.push(tag);
        out.extend_from_slice(&self.precision().to_le_bytes());
        if self.kind() == Kind::Normal {
            let exp = self.exponent().expect("normal value has an exponent");
            out.extend_from_slice(&exp.to_le_bytes());
            for limb in self.limbs() {
                out.extend_from_slice(&limb.to_le_bytes());
            }
        }
    }

    /// The exact binary encoding as a fresh byte vector.
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        self.write_bytes(&mut out);
        out
    }

    /// Decodes one value from the front of `bytes`, returning it with
    /// the number of bytes consumed. The decode is strict: every
    /// representation invariant is checked, so the returned value is
    /// bit-for-bit the one [`BigFloat::write_bytes`] encoded.
    ///
    /// # Errors
    ///
    /// Returns a [`SerialError`] for truncated input, an unknown tag,
    /// an out-of-range precision, a wrong limb count, or a significand
    /// that is not in normalized form.
    pub fn read_bytes(bytes: &[u8]) -> Result<(BigFloat, usize), SerialError> {
        let need = |n: usize| -> Result<(), SerialError> {
            if bytes.len() < n {
                Err(SerialError::new(format!(
                    "truncated: need {n} bytes, have {}",
                    bytes.len()
                )))
            } else {
                Ok(())
            }
        };
        need(5)?;
        let tag = bytes[0];
        if tag & !(TAG_KIND_MASK | TAG_SIGN_NEG) != 0 {
            return Err(SerialError::new(format!("invalid tag byte {tag:#04x}")));
        }
        let sign = if tag & TAG_SIGN_NEG != 0 {
            Sign::Neg
        } else {
            Sign::Pos
        };
        let kind = match tag & TAG_KIND_MASK {
            0 => Kind::Zero,
            1 => Kind::Normal,
            2 => Kind::Inf,
            _ => Kind::Nan,
        };
        let prec = u32::from_le_bytes(bytes[1..5].try_into().expect("4 bytes"));
        if !(MIN_PREC..=MAX_PREC).contains(&prec) {
            return Err(SerialError::new(format!("precision {prec} out of range")));
        }
        if kind != Kind::Normal {
            // Zero and NaN are canonically positive in this
            // representation (there is a single zero, like posit).
            if sign == Sign::Neg && kind != Kind::Inf {
                return Err(SerialError::new("negative sign on zero/NaN"));
            }
            return Ok((
                BigFloat::from_parts_exact(sign, kind, 0, Vec::new(), prec),
                5,
            ));
        }
        let nlimbs = prec.div_ceil(64) as usize;
        let total = 5 + 8 + nlimbs * 8;
        need(total)?;
        let exp = i64::from_le_bytes(bytes[5..13].try_into().expect("8 bytes"));
        let limbs: Vec<u64> = (0..nlimbs)
            .map(|i| {
                let at = 13 + i * 8;
                u64::from_le_bytes(bytes[at..at + 8].try_into().expect("8 bytes"))
            })
            .collect();
        if limbs[nlimbs - 1] >> 63 != 1 {
            return Err(SerialError::new("significand top bit not set"));
        }
        // Bits below the precision must be zero: the representation
        // keeps exactly `prec` significant bits left-aligned in the
        // limbs, and the rounding core cleared everything beneath them.
        let spare = nlimbs as u32 * 64 - prec;
        let spare_limbs = (spare / 64) as usize;
        if limbs[..spare_limbs].iter().any(|&l| l != 0)
            || (spare % 64 != 0 && limbs[spare_limbs] & ((1u64 << (spare % 64)) - 1) != 0)
        {
            return Err(SerialError::new("set bits below the stated precision"));
        }
        Ok((
            BigFloat::from_parts_exact(sign, kind, exp, limbs, prec),
            total,
        ))
    }
}

/// True when two values are identical *representations* — same sign,
/// kind, exponent, precision, and limbs — not merely numerically equal
/// (`PartialEq` treats `2.0` at 53 and 256 bits as equal; this does
/// not, and it distinguishes NaN payloads' kinds properly by never
/// comparing through arithmetic).
#[must_use]
pub fn bit_identical(a: &BigFloat, b: &BigFloat) -> bool {
    a.sign() == b.sign()
        && a.kind() == b.kind()
        && a.exponent() == b.exponent()
        && a.precision() == b.precision()
        && a.limbs() == b.limbs()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arith::Context;

    fn round_trip(x: &BigFloat) {
        let bytes = x.to_bytes();
        let (back, used) = BigFloat::read_bytes(&bytes).expect("decodes");
        assert_eq!(used, bytes.len());
        assert!(bit_identical(x, &back), "{x:?} vs {back:?}");
    }

    #[test]
    fn specials_round_trip() {
        round_trip(&BigFloat::zero());
        round_trip(&BigFloat::nan());
        round_trip(&BigFloat::infinity(Sign::Pos));
        round_trip(&BigFloat::infinity(Sign::Neg));
    }

    #[test]
    fn normals_round_trip_bit_exactly() {
        for x in [
            BigFloat::from_f64(0.3),
            BigFloat::from_f64(-1.0e-300),
            BigFloat::pow2(-2_900_000),
            BigFloat::from_u64(u64::MAX),
        ] {
            round_trip(&x);
        }
        // A 256-bit product with a full significand.
        let ctx = Context::new(256);
        let mut p = BigFloat::one();
        let third = ctx.div(&BigFloat::one(), &BigFloat::from_u64(3));
        for _ in 0..40 {
            p = ctx.mul(&p, &third);
        }
        round_trip(&p);
    }

    #[test]
    fn non_limb_aligned_precisions_round_trip() {
        for prec in [2, 3, 24, 53, 63, 64, 65, 100, 127, 129, 1000] {
            let ctx = Context::new(prec);
            let x = ctx.div(&BigFloat::from_u64(2), &BigFloat::from_u64(7));
            assert_eq!(x.precision(), prec);
            round_trip(&x);
        }
    }

    #[test]
    fn values_concatenate_and_split() {
        let vals = [
            BigFloat::from_f64(1.5),
            BigFloat::zero(),
            BigFloat::pow2(-9),
        ];
        let mut buf = Vec::new();
        for v in &vals {
            v.write_bytes(&mut buf);
        }
        let mut at = 0;
        for v in &vals {
            let (back, used) = BigFloat::read_bytes(&buf[at..]).unwrap();
            assert!(bit_identical(v, &back));
            at += used;
        }
        assert_eq!(at, buf.len());
    }

    #[test]
    fn corrupt_bytes_are_rejected_not_misread() {
        let good = BigFloat::from_f64(0.3).to_bytes();
        // Truncation at every prefix length fails cleanly.
        for n in 0..good.len() {
            assert!(BigFloat::read_bytes(&good[..n]).is_err(), "prefix {n}");
        }
        // Unknown tag bits.
        let mut bad = good.clone();
        bad[0] |= 0b0100_0000;
        assert!(BigFloat::read_bytes(&bad).is_err());
        // Precision zero / out of range.
        let mut bad = good.clone();
        bad[1..5].copy_from_slice(&0u32.to_le_bytes());
        assert!(BigFloat::read_bytes(&bad).is_err());
        let mut bad = good.clone();
        bad[1..5].copy_from_slice(&(MAX_PREC + 1).to_le_bytes());
        assert!(BigFloat::read_bytes(&bad).is_err());
        // Clearing the top limb's high bit denormalizes the significand.
        let mut bad = good.clone();
        let last = bad.len() - 1;
        bad[last] &= 0x7F;
        assert!(BigFloat::read_bytes(&bad).is_err());
        // Setting a bit below the precision violates the invariant
        // (0.3 at 53 bits leaves the low 11 bits of its limb clear).
        let mut bad = good;
        bad[13] |= 1;
        assert!(BigFloat::read_bytes(&bad).is_err());
    }

    #[test]
    fn negative_zero_and_nan_are_rejected() {
        let mut z = BigFloat::zero().to_bytes();
        z[0] |= TAG_SIGN_NEG;
        assert!(BigFloat::read_bytes(&z).is_err());
        let mut n = BigFloat::nan().to_bytes();
        n[0] |= TAG_SIGN_NEG;
        assert!(BigFloat::read_bytes(&n).is_err());
    }
}
