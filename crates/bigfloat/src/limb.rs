//! Low-level operations on little-endian limb (`u64`) slices.
//!
//! All functions in this module operate on *magnitudes*: slices are
//! interpreted as unsigned integers with `limbs[0]` least significant.
//! Higher layers attach sign and binary exponent.

/// Number of bits in one limb.
pub const LIMB_BITS: u32 = 64;

/// Returns `a + b` over equal-length slices, writing into `out`.
///
/// `out` must have the same length as `a` and `b`. Returns the carry out
/// of the most significant limb.
///
/// # Panics
///
/// Panics if the slice lengths differ.
pub fn add_same_len(a: &[u64], b: &[u64], out: &mut [u64]) -> bool {
    assert_eq!(a.len(), b.len());
    assert_eq!(a.len(), out.len());
    let mut carry = false;
    for i in 0..a.len() {
        let (s1, c1) = a[i].overflowing_add(b[i]);
        let (s2, c2) = s1.overflowing_add(carry as u64);
        out[i] = s2;
        carry = c1 || c2;
    }
    carry
}

/// Returns `a - b` over equal-length slices, writing into `out`.
///
/// Requires `a >= b` numerically; the final borrow is returned and is
/// `false` when the precondition holds.
///
/// # Panics
///
/// Panics if the slice lengths differ.
pub fn sub_same_len(a: &[u64], b: &[u64], out: &mut [u64]) -> bool {
    assert_eq!(a.len(), b.len());
    assert_eq!(a.len(), out.len());
    let mut borrow = false;
    for i in 0..a.len() {
        let (d1, b1) = a[i].overflowing_sub(b[i]);
        let (d2, b2) = d1.overflowing_sub(borrow as u64);
        out[i] = d2;
        borrow = b1 || b2;
    }
    borrow
}

/// Compares two equal-length magnitudes.
///
/// # Panics
///
/// Panics if the slice lengths differ.
pub fn cmp_same_len(a: &[u64], b: &[u64]) -> core::cmp::Ordering {
    assert_eq!(a.len(), b.len());
    for i in (0..a.len()).rev() {
        match a[i].cmp(&b[i]) {
            core::cmp::Ordering::Equal => {}
            other => return other,
        }
    }
    core::cmp::Ordering::Equal
}

/// Shifts a magnitude left (towards most significant) by `k` bits in place.
///
/// Bits shifted out of the top are discarded; the caller must ensure the
/// slice is long enough for the intended use.
pub fn shl_in_place(limbs: &mut [u64], k: u32) {
    if k == 0 || limbs.is_empty() {
        return;
    }
    let limb_shift = (k / LIMB_BITS) as usize;
    let bit_shift = k % LIMB_BITS;
    let n = limbs.len();
    if limb_shift >= n {
        limbs.fill(0);
        return;
    }
    if bit_shift == 0 {
        for i in (limb_shift..n).rev() {
            limbs[i] = limbs[i - limb_shift];
        }
    } else {
        for i in (limb_shift..n).rev() {
            let lo = limbs[i - limb_shift];
            let lo2 = if i > limb_shift {
                limbs[i - limb_shift - 1]
            } else {
                0
            };
            limbs[i] = (lo << bit_shift) | (lo2 >> (LIMB_BITS - bit_shift));
        }
    }
    limbs[..limb_shift].fill(0);
}

/// Shifts a magnitude right by `k` bits in place, returning `true` if any
/// nonzero bit was shifted out (the *sticky* bit).
pub fn shr_in_place_sticky(limbs: &mut [u64], k: u32) -> bool {
    if k == 0 || limbs.is_empty() {
        return false;
    }
    let n = limbs.len();
    let total_bits = n as u64 * LIMB_BITS as u64;
    if k as u64 >= total_bits {
        let sticky = limbs.iter().any(|&l| l != 0);
        limbs.fill(0);
        return sticky;
    }
    let limb_shift = (k / LIMB_BITS) as usize;
    let bit_shift = k % LIMB_BITS;
    let mut sticky = limbs[..limb_shift].iter().any(|&l| l != 0);
    if bit_shift > 0 {
        sticky |= limbs[limb_shift] << (LIMB_BITS - bit_shift) != 0;
    }
    if bit_shift == 0 {
        for i in 0..n - limb_shift {
            limbs[i] = limbs[i + limb_shift];
        }
    } else {
        for i in 0..n - limb_shift {
            let hi = limbs[i + limb_shift];
            let hi2 = if i + limb_shift + 1 < n {
                limbs[i + limb_shift + 1]
            } else {
                0
            };
            limbs[i] = (hi >> bit_shift) | (hi2 << (LIMB_BITS - bit_shift));
        }
    }
    limbs[n - limb_shift..].fill(0);
    if bit_shift > 0 {
        // The loop above already zeroes the vacated limbs; the partially
        // vacated top limb was handled by the shift itself.
    }
    sticky
}

/// Full schoolbook multiplication: `out = a * b`.
///
/// `out` must have length `a.len() + b.len()` and is fully overwritten.
///
/// # Panics
///
/// Panics if `out.len() != a.len() + b.len()`.
pub fn mul(a: &[u64], b: &[u64], out: &mut [u64]) {
    assert_eq!(out.len(), a.len() + b.len());
    out.fill(0);
    for (i, &ai) in a.iter().enumerate() {
        if ai == 0 {
            continue;
        }
        let mut carry: u64 = 0;
        for (j, &bj) in b.iter().enumerate() {
            let t = ai as u128 * bj as u128 + out[i + j] as u128 + carry as u128;
            out[i + j] = t as u64;
            carry = (t >> 64) as u64;
        }
        out[i + b.len()] = out[i + b.len()].wrapping_add(carry);
    }
}

/// Multiplies a magnitude by a single limb in place, returning the carry.
pub fn mul_small_in_place(limbs: &mut [u64], m: u64) -> u64 {
    let mut carry: u64 = 0;
    for l in limbs.iter_mut() {
        let t = *l as u128 * m as u128 + carry as u128;
        *l = t as u64;
        carry = (t >> 64) as u64;
    }
    carry
}

/// Divides a magnitude by a single limb in place, returning the remainder.
///
/// # Panics
///
/// Panics if `d == 0`.
pub fn div_small_in_place(limbs: &mut [u64], d: u64) -> u64 {
    assert!(d != 0, "division by zero limb");
    let mut rem: u64 = 0;
    for l in limbs.iter_mut().rev() {
        let t = ((rem as u128) << 64) | *l as u128;
        *l = (t / d as u128) as u64;
        rem = (t % d as u128) as u64;
    }
    rem
}

/// Index (from the least-significant bit, 0-based) of the highest set bit,
/// or `None` if the magnitude is zero.
pub fn highest_bit(limbs: &[u64]) -> Option<u64> {
    for i in (0..limbs.len()).rev() {
        if limbs[i] != 0 {
            return Some(i as u64 * LIMB_BITS as u64 + (63 - limbs[i].leading_zeros() as u64));
        }
    }
    None
}

/// Returns true if all limbs are zero.
pub fn is_zero(limbs: &[u64]) -> bool {
    limbs.iter().all(|&l| l == 0)
}

/// Reads the bit at `idx` (0 = least significant). Bits beyond the slice
/// read as zero.
pub fn get_bit(limbs: &[u64], idx: u64) -> bool {
    let limb = (idx / LIMB_BITS as u64) as usize;
    if limb >= limbs.len() {
        return false;
    }
    (limbs[limb] >> (idx % LIMB_BITS as u64)) & 1 == 1
}

/// Returns true if any bit strictly below `idx` is set.
pub fn any_bit_below(limbs: &[u64], idx: u64) -> bool {
    if idx == 0 {
        return false;
    }
    let whole = (idx / LIMB_BITS as u64) as usize;
    let part = idx % LIMB_BITS as u64;
    for &l in limbs.iter().take(whole.min(limbs.len())) {
        if l != 0 {
            return true;
        }
    }
    if part > 0 && whole < limbs.len() {
        let mask = (1u64 << part) - 1;
        if limbs[whole] & mask != 0 {
            return true;
        }
    }
    false
}

/// Clears every bit strictly below `idx`.
pub fn clear_bits_below(limbs: &mut [u64], idx: u64) {
    let whole = (idx / LIMB_BITS as u64) as usize;
    let part = idx % LIMB_BITS as u64;
    let upto = whole.min(limbs.len());
    for l in limbs.iter_mut().take(upto) {
        *l = 0;
    }
    if part > 0 && whole < limbs.len() {
        let mask = !((1u64 << part) - 1);
        limbs[whole] &= mask;
    }
}

/// Adds `1 << idx` to the magnitude in place; returns carry out of the top.
pub fn add_bit(limbs: &mut [u64], idx: u64) -> bool {
    let mut limb = (idx / LIMB_BITS as u64) as usize;
    if limb >= limbs.len() {
        return false;
    }
    let mut add = 1u64 << (idx % LIMB_BITS as u64);
    while limb < limbs.len() {
        let (s, c) = limbs[limb].overflowing_add(add);
        limbs[limb] = s;
        if !c {
            return false;
        }
        add = 1;
        limb += 1;
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use core::cmp::Ordering;

    #[test]
    fn add_and_sub_round_trip() {
        let a = [0xFFFF_FFFF_FFFF_FFFFu64, 1];
        let b = [1u64, 0];
        let mut s = [0u64; 2];
        let carry = add_same_len(&a, &b, &mut s);
        assert!(!carry);
        assert_eq!(s, [0, 2]);
        let mut d = [0u64; 2];
        let borrow = sub_same_len(&s, &b, &mut d);
        assert!(!borrow);
        assert_eq!(d, a);
    }

    #[test]
    fn add_carries_out() {
        let a = [u64::MAX, u64::MAX];
        let b = [1u64, 0];
        let mut s = [0u64; 2];
        assert!(add_same_len(&a, &b, &mut s));
        assert_eq!(s, [0, 0]);
    }

    #[test]
    fn cmp_orders_by_high_limb_first() {
        assert_eq!(cmp_same_len(&[0, 2], &[u64::MAX, 1]), Ordering::Greater);
        assert_eq!(cmp_same_len(&[5, 1], &[5, 1]), Ordering::Equal);
        assert_eq!(cmp_same_len(&[4, 1], &[5, 1]), Ordering::Less);
    }

    #[test]
    fn shl_moves_bits_up() {
        let mut l = [0b1011u64, 0];
        shl_in_place(&mut l, 2);
        assert_eq!(l, [0b101100, 0]);
        let mut l = [1u64 << 63, 0];
        shl_in_place(&mut l, 1);
        assert_eq!(l, [0, 1]);
        let mut l = [7u64, 0];
        shl_in_place(&mut l, 64);
        assert_eq!(l, [0, 7]);
    }

    #[test]
    fn shr_reports_sticky() {
        let mut l = [0b1011u64, 0];
        let sticky = shr_in_place_sticky(&mut l, 2);
        assert!(sticky);
        assert_eq!(l, [0b10, 0]);
        let mut l = [0b1000u64, 0];
        assert!(!shr_in_place_sticky(&mut l, 3));
        assert_eq!(l, [1, 0]);
        let mut l = [1u64, 2];
        assert!(shr_in_place_sticky(&mut l, 65));
        assert_eq!(l, [1, 0]);
        let mut l = [1u64, 0];
        assert!(shr_in_place_sticky(&mut l, 200));
        assert_eq!(l, [0, 0]);
    }

    #[test]
    fn mul_matches_u128() {
        let a = [0xDEAD_BEEF_u64, 0x1234];
        let b = [0xCAFE_BABE_u64, 0];
        let mut out = [0u64; 4];
        mul(&a, &b, &mut out);
        let wide = ((a[1] as u128) << 64 | a[0] as u128) * b[0] as u128;
        // a*b fits in 192 bits here; check the low 128 explicitly.
        assert_eq!(out[0], wide as u64);
        // Recompute limb 1..2 via u128 pieces.
        let lo = a[0] as u128 * b[0] as u128;
        let hi = a[1] as u128 * b[0] as u128 + (lo >> 64);
        assert_eq!(out[1], hi as u64);
        assert_eq!(out[2], (hi >> 64) as u64);
        assert_eq!(out[3], 0);
    }

    #[test]
    fn small_mul_div_invert() {
        let mut l = [0x0123_4567_89AB_CDEFu64, 0x42];
        let orig = l;
        let carry = mul_small_in_place(&mut l, 1_000_003);
        assert_eq!(carry, 0);
        let rem = div_small_in_place(&mut l, 1_000_003);
        assert_eq!(rem, 0);
        assert_eq!(l, orig);
    }

    #[test]
    fn highest_bit_and_bit_access() {
        assert_eq!(highest_bit(&[0, 0]), None);
        assert_eq!(highest_bit(&[1, 0]), Some(0));
        assert_eq!(highest_bit(&[0, 1]), Some(64));
        assert_eq!(highest_bit(&[0, 1 << 63]), Some(127));
        let l = [0b100u64, 1];
        assert!(get_bit(&l, 2));
        assert!(!get_bit(&l, 3));
        assert!(get_bit(&l, 64));
        assert!(!get_bit(&l, 1000));
        assert!(any_bit_below(&l, 3));
        assert!(!any_bit_below(&l, 2));
    }

    #[test]
    fn clear_and_add_bit() {
        let mut l = [0b1111u64, 0b1];
        clear_bits_below(&mut l, 3);
        assert_eq!(l, [0b1000, 0b1]);
        let mut l = [u64::MAX, 0];
        assert!(!add_bit(&mut l, 0));
        assert_eq!(l, [0, 1]);
        let mut l = [u64::MAX, u64::MAX];
        assert!(add_bit(&mut l, 0));
        assert_eq!(l, [0, 0]);
    }
}
