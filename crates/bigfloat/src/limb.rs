//! Low-level operations on little-endian limb slices.
//!
//! All functions in this module operate on *magnitudes*: slices are
//! interpreted as unsigned integers with `limbs[0]` least significant.
//! Higher layers attach sign and binary exponent.
//!
//! The arithmetic is generic over the machine word via the [`Limb`]
//! trait. Production code uses `u64` limbs throughout (type inference
//! keeps every existing call site unchanged); the `u32` instantiation
//! exists so tests can cross-check the generic kernels against a second
//! word size. Two specialized layers sit on top of the general slice
//! kernels:
//!
//! - [`fixed`] — const-generic `[L; N]` kernels for the hot fixed
//!   widths (128/256-bit operands). No heap, no length dispatch, and
//!   the inner loops fully unroll at monomorphization time.
//! - [`div_rem_knuth`] — word-at-a-time long division (Knuth's
//!   Algorithm D), O(n·m) limb operations instead of the O(bits·n)
//!   restoring bit loop it replaced.

/// Number of bits in one `u64` limb (the production limb type).
pub const LIMB_BITS: u32 = 64;

/// A machine word usable as a bignum limb.
///
/// Implemented for `u64` (production) and `u32` (tested alternative).
/// All methods mirror the corresponding inherent integer methods; the
/// double-width helpers (`widening_mul`, `carrying_mul_add`,
/// `div2by1`) are the only places a wider intermediate type appears.
pub trait Limb:
    Copy
    + Eq
    + Ord
    + core::fmt::Debug
    + core::hash::Hash
    + core::ops::BitAnd<Output = Self>
    + core::ops::BitOr<Output = Self>
{
    /// Number of bits in the limb.
    const BITS: u32;
    /// The additive identity.
    const ZERO: Self;
    /// The multiplicative identity.
    const ONE: Self;
    /// All bits set.
    const MAX: Self;

    /// `1` if `bit` else `0` — carries and borrows as limbs.
    fn from_bit(bit: bool) -> Self;
    /// Number of leading zero bits.
    fn leading_zeros(self) -> u32;
    /// Wrapping addition plus carry-out flag.
    fn overflowing_add(self, rhs: Self) -> (Self, bool);
    /// Wrapping subtraction plus borrow-out flag.
    fn overflowing_sub(self, rhs: Self) -> (Self, bool);
    /// Wrapping addition.
    fn wrapping_add(self, rhs: Self) -> Self;
    /// Wrapping subtraction.
    fn wrapping_sub(self, rhs: Self) -> Self;
    /// Left shift by `k < Self::BITS` bits.
    fn shl(self, k: u32) -> Self;
    /// Logical right shift by `k < Self::BITS` bits.
    fn shr(self, k: u32) -> Self;
    /// Full `(lo, hi)` product of two limbs.
    fn widening_mul(self, rhs: Self) -> (Self, Self);
    /// `(lo, hi)` of `self * rhs + add + carry`. The result always fits
    /// two limbs: `(B-1)² + 2(B-1) = B² - 1` where `B = 2^BITS`.
    fn carrying_mul_add(self, rhs: Self, add: Self, carry: Self) -> (Self, Self);
    /// `(quotient, remainder)` of the two-limb value `hi·B + lo` by `d`.
    ///
    /// Requires `hi < d` so the quotient fits one limb.
    fn div2by1(hi: Self, lo: Self, d: Self) -> (Self, Self);
}

macro_rules! impl_limb {
    ($t:ty, $wide:ty) => {
        impl Limb for $t {
            const BITS: u32 = <$t>::BITS;
            const ZERO: Self = 0;
            const ONE: Self = 1;
            const MAX: Self = <$t>::MAX;

            #[inline(always)]
            fn from_bit(bit: bool) -> Self {
                bit as $t
            }
            #[inline(always)]
            fn leading_zeros(self) -> u32 {
                <$t>::leading_zeros(self)
            }
            #[inline(always)]
            fn overflowing_add(self, rhs: Self) -> (Self, bool) {
                <$t>::overflowing_add(self, rhs)
            }
            #[inline(always)]
            fn overflowing_sub(self, rhs: Self) -> (Self, bool) {
                <$t>::overflowing_sub(self, rhs)
            }
            #[inline(always)]
            fn wrapping_add(self, rhs: Self) -> Self {
                <$t>::wrapping_add(self, rhs)
            }
            #[inline(always)]
            fn wrapping_sub(self, rhs: Self) -> Self {
                <$t>::wrapping_sub(self, rhs)
            }
            #[inline(always)]
            fn shl(self, k: u32) -> Self {
                self << k
            }
            #[inline(always)]
            fn shr(self, k: u32) -> Self {
                self >> k
            }
            #[inline(always)]
            fn widening_mul(self, rhs: Self) -> (Self, Self) {
                let t = self as $wide * rhs as $wide;
                (t as $t, (t >> <$t>::BITS) as $t)
            }
            #[inline(always)]
            fn carrying_mul_add(self, rhs: Self, add: Self, carry: Self) -> (Self, Self) {
                let t = self as $wide * rhs as $wide + add as $wide + carry as $wide;
                (t as $t, (t >> <$t>::BITS) as $t)
            }
            #[inline(always)]
            fn div2by1(hi: Self, lo: Self, d: Self) -> (Self, Self) {
                debug_assert!(hi < d, "div2by1 quotient would not fit one limb");
                let t = ((hi as $wide) << <$t>::BITS) | lo as $wide;
                ((t / d as $wide) as $t, (t % d as $wide) as $t)
            }
        }
    };
}

impl_limb!(u64, u128);
impl_limb!(u32, u64);

/// Returns `a + b` over equal-length slices, writing into `out`.
///
/// `out` must have the same length as `a` and `b`. Returns the carry out
/// of the most significant limb.
///
/// # Panics
///
/// Panics if the slice lengths differ.
pub fn add_same_len<L: Limb>(a: &[L], b: &[L], out: &mut [L]) -> bool {
    assert_eq!(a.len(), b.len());
    assert_eq!(a.len(), out.len());
    let mut carry = false;
    for i in 0..a.len() {
        let (s1, c1) = a[i].overflowing_add(b[i]);
        let (s2, c2) = s1.overflowing_add(L::from_bit(carry));
        out[i] = s2;
        carry = c1 || c2;
    }
    carry
}

/// Returns `a - b` over equal-length slices, writing into `out`.
///
/// Requires `a >= b` numerically; the final borrow is returned and is
/// `false` when the precondition holds.
///
/// # Panics
///
/// Panics if the slice lengths differ.
pub fn sub_same_len<L: Limb>(a: &[L], b: &[L], out: &mut [L]) -> bool {
    assert_eq!(a.len(), b.len());
    assert_eq!(a.len(), out.len());
    let mut borrow = false;
    for i in 0..a.len() {
        let (d1, b1) = a[i].overflowing_sub(b[i]);
        let (d2, b2) = d1.overflowing_sub(L::from_bit(borrow));
        out[i] = d2;
        borrow = b1 || b2;
    }
    borrow
}

/// Compares two equal-length magnitudes.
///
/// # Panics
///
/// Panics if the slice lengths differ.
pub fn cmp_same_len<L: Limb>(a: &[L], b: &[L]) -> core::cmp::Ordering {
    assert_eq!(a.len(), b.len());
    for i in (0..a.len()).rev() {
        match a[i].cmp(&b[i]) {
            core::cmp::Ordering::Equal => {}
            other => return other,
        }
    }
    core::cmp::Ordering::Equal
}

/// Shifts a magnitude left (towards most significant) by `k` bits in place.
///
/// Bits shifted out of the top are discarded; the caller must ensure the
/// slice is long enough for the intended use.
pub fn shl_in_place<L: Limb>(limbs: &mut [L], k: u32) {
    if k == 0 || limbs.is_empty() {
        return;
    }
    let limb_shift = (k / L::BITS) as usize;
    let bit_shift = k % L::BITS;
    let n = limbs.len();
    if limb_shift >= n {
        limbs.fill(L::ZERO);
        return;
    }
    if bit_shift == 0 {
        for i in (limb_shift..n).rev() {
            limbs[i] = limbs[i - limb_shift];
        }
    } else {
        for i in (limb_shift..n).rev() {
            let lo = limbs[i - limb_shift];
            let lo2 = if i > limb_shift {
                limbs[i - limb_shift - 1]
            } else {
                L::ZERO
            };
            limbs[i] = lo.shl(bit_shift) | lo2.shr(L::BITS - bit_shift);
        }
    }
    limbs[..limb_shift].fill(L::ZERO);
}

/// Shifts a magnitude right by `k` bits in place, returning `true` if any
/// nonzero bit was shifted out (the *sticky* bit).
pub fn shr_in_place_sticky<L: Limb>(limbs: &mut [L], k: u32) -> bool {
    if k == 0 || limbs.is_empty() {
        return false;
    }
    let n = limbs.len();
    let total_bits = n as u64 * L::BITS as u64;
    if k as u64 >= total_bits {
        let sticky = limbs.iter().any(|&l| l != L::ZERO);
        limbs.fill(L::ZERO);
        return sticky;
    }
    let limb_shift = (k / L::BITS) as usize;
    let bit_shift = k % L::BITS;
    let mut sticky = limbs[..limb_shift].iter().any(|&l| l != L::ZERO);
    if bit_shift > 0 {
        sticky |= limbs[limb_shift].shl(L::BITS - bit_shift) != L::ZERO;
    }
    if bit_shift == 0 {
        for i in 0..n - limb_shift {
            limbs[i] = limbs[i + limb_shift];
        }
    } else {
        for i in 0..n - limb_shift {
            let hi = limbs[i + limb_shift];
            let hi2 = if i + limb_shift + 1 < n {
                limbs[i + limb_shift + 1]
            } else {
                L::ZERO
            };
            limbs[i] = hi.shr(bit_shift) | hi2.shl(L::BITS - bit_shift);
        }
    }
    limbs[n - limb_shift..].fill(L::ZERO);
    sticky
}

/// Full schoolbook multiplication: `out = a * b`.
///
/// `out` must have length `a.len() + b.len()` and is fully overwritten.
///
/// # Panics
///
/// Panics if `out.len() != a.len() + b.len()`.
pub fn mul<L: Limb>(a: &[L], b: &[L], out: &mut [L]) {
    assert_eq!(out.len(), a.len() + b.len());
    out.fill(L::ZERO);
    for (i, &ai) in a.iter().enumerate() {
        if ai == L::ZERO {
            continue;
        }
        let mut carry = L::ZERO;
        for (j, &bj) in b.iter().enumerate() {
            let (lo, hi) = ai.carrying_mul_add(bj, out[i + j], carry);
            out[i + j] = lo;
            carry = hi;
        }
        out[i + b.len()] = out[i + b.len()].wrapping_add(carry);
    }
}

/// Multiplies a magnitude by a single limb in place, returning the carry.
pub fn mul_small_in_place<L: Limb>(limbs: &mut [L], m: L) -> L {
    let mut carry = L::ZERO;
    for l in limbs.iter_mut() {
        let (lo, hi) = l.carrying_mul_add(m, carry, L::ZERO);
        *l = lo;
        carry = hi;
    }
    carry
}

/// Divides a magnitude by a single limb in place, returning the remainder.
///
/// # Panics
///
/// Panics if `d == 0`.
pub fn div_small_in_place<L: Limb>(limbs: &mut [L], d: L) -> L {
    assert!(d != L::ZERO, "division by zero limb");
    let mut rem = L::ZERO;
    for l in limbs.iter_mut().rev() {
        let (q, r) = L::div2by1(rem, *l, d);
        *l = q;
        rem = r;
    }
    rem
}

/// Word-at-a-time long division (Knuth's Algorithm D): returns the
/// quotient `floor(num / den)` and the remainder.
///
/// `den` must be *normalized* — its top limb must have the high bit set
/// — which every `BigFloat` significand satisfies by construction, so
/// the usual D1 normalization shift is not needed. The quotient has
/// `num.len() - den.len() + 1` limbs.
///
/// Cost is O(`num.len()` · `den.len()`) limb multiplications, versus
/// O(bits · limbs) full-slice passes for the restoring bit-by-bit
/// division this replaced (`testing::div_restoring` keeps that
/// algorithm as a differential reference).
///
/// # Panics
///
/// Panics if `den` is empty or not normalized, or if
/// `num.len() < den.len()`.
pub fn div_rem_knuth<L: Limb>(num: &[L], den: &[L]) -> (Vec<L>, Vec<L>) {
    let n = den.len();
    assert!(n > 0, "empty divisor");
    assert!(
        den[n - 1].shr(L::BITS - 1) == L::ONE,
        "divisor not normalized"
    );
    assert!(num.len() >= n, "dividend shorter than divisor");

    if n == 1 {
        let d = den[0];
        let mut q = num.to_vec();
        let rem = div_small_in_place(&mut q, d);
        return (q, vec![rem]);
    }

    let m = num.len() - n;
    // Working dividend with one extra high limb for the per-step
    // two-limb window (u[j+n], u[j+n-1]).
    let mut w: Vec<L> = Vec::with_capacity(num.len() + 1);
    w.extend_from_slice(num);
    w.push(L::ZERO);
    let mut q = vec![L::ZERO; m + 1];
    let v_hi = den[n - 1];
    let v_next = den[n - 2];

    for j in (0..=m).rev() {
        // D3: estimate qhat from the top limbs. When the top dividend
        // limb equals the top divisor limb the true digit is B-1 and
        // rhat can exceed one limb (in which case the refinement test
        // below is vacuously satisfied, flagged by `rhat_valid`).
        let (mut qhat, mut rhat, mut rhat_valid) = if w[j + n] == v_hi {
            let (r, overflow) = w[j + n - 1].overflowing_add(v_hi);
            (L::MAX, r, !overflow)
        } else {
            let (qh, r) = L::div2by1(w[j + n], w[j + n - 1], v_hi);
            (qh, r, true)
        };
        // Refine: decrement qhat while qhat·v[n-2] > rhat·B + w[j+n-2].
        // At most two decrements happen for a normalized divisor.
        while rhat_valid {
            let (p_lo, p_hi) = qhat.widening_mul(v_next);
            if (p_hi, p_lo) <= (rhat, w[j + n - 2]) {
                break;
            }
            qhat = qhat.wrapping_sub(L::ONE);
            let (r, overflow) = rhat.overflowing_add(v_hi);
            rhat = r;
            rhat_valid = !overflow;
        }
        // D4: multiply-and-subtract w[j ..= j+n] -= qhat * den.
        let mut carry = L::ZERO;
        let mut borrow = false;
        for i in 0..n {
            let (p_lo, p_hi) = qhat.carrying_mul_add(den[i], carry, L::ZERO);
            carry = p_hi;
            let (d1, b1) = w[j + i].overflowing_sub(p_lo);
            let (d2, b2) = d1.overflowing_sub(L::from_bit(borrow));
            w[j + i] = d2;
            borrow = b1 || b2;
        }
        let (d1, b1) = w[j + n].overflowing_sub(carry);
        let (d2, b2) = d1.overflowing_sub(L::from_bit(borrow));
        w[j + n] = d2;
        // D5/D6: qhat was one too large (probability ~2/B) — add back.
        if b1 || b2 {
            qhat = qhat.wrapping_sub(L::ONE);
            let mut carry = false;
            for i in 0..n {
                let (s1, c1) = w[j + i].overflowing_add(den[i]);
                let (s2, c2) = s1.overflowing_add(L::from_bit(carry));
                w[j + i] = s2;
                carry = c1 || c2;
            }
            // The carry out cancels the borrow that triggered add-back.
            w[j + n] = w[j + n].wrapping_add(L::from_bit(carry));
        }
        q[j] = qhat;
    }

    w.truncate(n);
    (q, w)
}

/// Index (from the least-significant bit, 0-based) of the highest set bit,
/// or `None` if the magnitude is zero.
pub fn highest_bit<L: Limb>(limbs: &[L]) -> Option<u64> {
    for i in (0..limbs.len()).rev() {
        if limbs[i] != L::ZERO {
            return Some(
                i as u64 * L::BITS as u64 + (L::BITS - 1 - limbs[i].leading_zeros()) as u64,
            );
        }
    }
    None
}

/// Returns true if all limbs are zero.
pub fn is_zero<L: Limb>(limbs: &[L]) -> bool {
    limbs.iter().all(|&l| l == L::ZERO)
}

/// Reads the bit at `idx` (0 = least significant). Bits beyond the slice
/// read as zero.
pub fn get_bit<L: Limb>(limbs: &[L], idx: u64) -> bool {
    let limb = (idx / L::BITS as u64) as usize;
    if limb >= limbs.len() {
        return false;
    }
    limbs[limb].shr((idx % L::BITS as u64) as u32) & L::ONE == L::ONE
}

/// Returns true if any bit strictly below `idx` is set.
pub fn any_bit_below<L: Limb>(limbs: &[L], idx: u64) -> bool {
    if idx == 0 {
        return false;
    }
    let whole = (idx / L::BITS as u64) as usize;
    let part = (idx % L::BITS as u64) as u32;
    for &l in limbs.iter().take(whole.min(limbs.len())) {
        if l != L::ZERO {
            return true;
        }
    }
    if part > 0 && whole < limbs.len() {
        let mask = L::MAX.shr(L::BITS - part);
        if limbs[whole] & mask != L::ZERO {
            return true;
        }
    }
    false
}

/// Clears every bit strictly below `idx`.
pub fn clear_bits_below<L: Limb>(limbs: &mut [L], idx: u64) {
    let whole = (idx / L::BITS as u64) as usize;
    let part = (idx % L::BITS as u64) as u32;
    let upto = whole.min(limbs.len());
    for l in limbs.iter_mut().take(upto) {
        *l = L::ZERO;
    }
    if part > 0 && whole < limbs.len() {
        let mask = L::MAX.shl(part);
        limbs[whole] = limbs[whole] & mask;
    }
}

/// Adds `1 << idx` to the magnitude in place; returns carry out of the top.
pub fn add_bit<L: Limb>(limbs: &mut [L], idx: u64) -> bool {
    let mut limb = (idx / L::BITS as u64) as usize;
    if limb >= limbs.len() {
        return false;
    }
    let mut add = L::ONE.shl((idx % L::BITS as u64) as u32);
    while limb < limbs.len() {
        let (s, c) = limbs[limb].overflowing_add(add);
        limbs[limb] = s;
        if !c {
            return false;
        }
        add = L::ONE;
        limb += 1;
    }
    true
}

/// Allocation-free const-generic kernels for fixed operand widths.
///
/// These are the hot paths `Context::{add,sub,mul}` routes 128/256-bit
/// work through: the array length is a compile-time constant, so the
/// inner loops fully unroll and nothing touches the heap. Results are
/// bit-identical to the general slice kernels (cross-checked by tests
/// and by the goldens diff gate).
pub mod fixed {
    use super::Limb;

    /// `a + b` over fixed-width arrays; returns `(sum, carry_out)`.
    #[inline]
    pub fn add<L: Limb, const N: usize>(a: &[L; N], b: &[L; N]) -> ([L; N], bool) {
        let mut out = [L::ZERO; N];
        let mut carry = false;
        for i in 0..N {
            let (s1, c1) = a[i].overflowing_add(b[i]);
            let (s2, c2) = s1.overflowing_add(L::from_bit(carry));
            out[i] = s2;
            carry = c1 || c2;
        }
        (out, carry)
    }

    /// `a - b` over fixed-width arrays; returns `(difference, borrow_out)`.
    #[inline]
    pub fn sub<L: Limb, const N: usize>(a: &[L; N], b: &[L; N]) -> ([L; N], bool) {
        let mut out = [L::ZERO; N];
        let mut borrow = false;
        for i in 0..N {
            let (d1, b1) = a[i].overflowing_sub(b[i]);
            let (d2, b2) = d1.overflowing_sub(L::from_bit(borrow));
            out[i] = d2;
            borrow = b1 || b2;
        }
        (out, borrow)
    }

    /// Compares two fixed-width magnitudes.
    #[inline]
    pub fn cmp<L: Limb, const N: usize>(a: &[L; N], b: &[L; N]) -> core::cmp::Ordering {
        let mut i = N;
        while i > 0 {
            i -= 1;
            match a[i].cmp(&b[i]) {
                core::cmp::Ordering::Equal => {}
                other => return other,
            }
        }
        core::cmp::Ordering::Equal
    }

    /// Full `N x N -> 2N` limb product with unrolled schoolbook loops.
    ///
    /// # Panics
    ///
    /// Panics if `N2 != 2 * N` (checked once, optimized out).
    #[inline]
    pub fn mul<L: Limb, const N: usize, const N2: usize>(a: &[L; N], b: &[L; N]) -> [L; N2] {
        assert!(N2 == 2 * N, "output width must be twice the input width");
        let mut out = [L::ZERO; N2];
        for i in 0..N {
            let mut carry = L::ZERO;
            for j in 0..N {
                let (lo, hi) = a[i].carrying_mul_add(b[j], out[i + j], carry);
                out[i + j] = lo;
                carry = hi;
            }
            out[i + N] = carry;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use core::cmp::Ordering;

    #[test]
    fn add_and_sub_round_trip() {
        let a = [0xFFFF_FFFF_FFFF_FFFFu64, 1];
        let b = [1u64, 0];
        let mut s = [0u64; 2];
        let carry = add_same_len(&a, &b, &mut s);
        assert!(!carry);
        assert_eq!(s, [0, 2]);
        let mut d = [0u64; 2];
        let borrow = sub_same_len(&s, &b, &mut d);
        assert!(!borrow);
        assert_eq!(d, a);
    }

    #[test]
    fn add_carries_out() {
        let a = [u64::MAX, u64::MAX];
        let b = [1u64, 0];
        let mut s = [0u64; 2];
        assert!(add_same_len(&a, &b, &mut s));
        assert_eq!(s, [0, 0]);
    }

    #[test]
    fn cmp_orders_by_high_limb_first() {
        assert_eq!(cmp_same_len(&[0, 2], &[u64::MAX, 1]), Ordering::Greater);
        assert_eq!(cmp_same_len(&[5u64, 1], &[5, 1]), Ordering::Equal);
        assert_eq!(cmp_same_len(&[4u64, 1], &[5, 1]), Ordering::Less);
    }

    #[test]
    fn shl_moves_bits_up() {
        let mut l = [0b1011u64, 0];
        shl_in_place(&mut l, 2);
        assert_eq!(l, [0b101100, 0]);
        let mut l = [1u64 << 63, 0];
        shl_in_place(&mut l, 1);
        assert_eq!(l, [0, 1]);
        let mut l = [7u64, 0];
        shl_in_place(&mut l, 64);
        assert_eq!(l, [0, 7]);
    }

    #[test]
    fn shr_reports_sticky() {
        let mut l = [0b1011u64, 0];
        let sticky = shr_in_place_sticky(&mut l, 2);
        assert!(sticky);
        assert_eq!(l, [0b10, 0]);
        let mut l = [0b1000u64, 0];
        assert!(!shr_in_place_sticky(&mut l, 3));
        assert_eq!(l, [1, 0]);
        let mut l = [1u64, 2];
        assert!(shr_in_place_sticky(&mut l, 65));
        assert_eq!(l, [1, 0]);
        let mut l = [1u64, 0];
        assert!(shr_in_place_sticky(&mut l, 200));
        assert_eq!(l, [0, 0]);
    }

    #[test]
    fn mul_matches_u128() {
        let a = [0xDEAD_BEEF_u64, 0x1234];
        let b = [0xCAFE_BABE_u64, 0];
        let mut out = [0u64; 4];
        mul(&a, &b, &mut out);
        let wide = ((a[1] as u128) << 64 | a[0] as u128) * b[0] as u128;
        // a*b fits in 192 bits here; check the low 128 explicitly.
        assert_eq!(out[0], wide as u64);
        // Recompute limb 1..2 via u128 pieces.
        let lo = a[0] as u128 * b[0] as u128;
        let hi = a[1] as u128 * b[0] as u128 + (lo >> 64);
        assert_eq!(out[1], hi as u64);
        assert_eq!(out[2], (hi >> 64) as u64);
        assert_eq!(out[3], 0);
    }

    #[test]
    fn small_mul_div_invert() {
        let mut l = [0x0123_4567_89AB_CDEFu64, 0x42];
        let orig = l;
        let carry = mul_small_in_place(&mut l, 1_000_003);
        assert_eq!(carry, 0);
        let rem = div_small_in_place(&mut l, 1_000_003);
        assert_eq!(rem, 0);
        assert_eq!(l, orig);
    }

    #[test]
    fn highest_bit_and_bit_access() {
        assert_eq!(highest_bit(&[0u64, 0]), None);
        assert_eq!(highest_bit(&[1u64, 0]), Some(0));
        assert_eq!(highest_bit(&[0u64, 1]), Some(64));
        assert_eq!(highest_bit(&[0u64, 1 << 63]), Some(127));
        let l = [0b100u64, 1];
        assert!(get_bit(&l, 2));
        assert!(!get_bit(&l, 3));
        assert!(get_bit(&l, 64));
        assert!(!get_bit(&l, 1000));
        assert!(any_bit_below(&l, 3));
        assert!(!any_bit_below(&l, 2));
    }

    #[test]
    fn clear_and_add_bit() {
        let mut l = [0b1111u64, 0b1];
        clear_bits_below(&mut l, 3);
        assert_eq!(l, [0b1000, 0b1]);
        let mut l = [u64::MAX, 0];
        assert!(!add_bit(&mut l, 0));
        assert_eq!(l, [0, 1]);
        let mut l = [u64::MAX, u64::MAX];
        assert!(add_bit(&mut l, 0));
        assert_eq!(l, [0, 0]);
    }

    #[test]
    fn generic_kernels_work_with_u32_limbs() {
        // The same operations, instantiated at a different word size,
        // must agree with wide-integer arithmetic.
        let a = [0xFFFF_FFFFu32, 0x1234_5678];
        let b = [1u32, 0x0000_0001];
        let mut s = [0u32; 2];
        assert!(!add_same_len(&a, &b, &mut s));
        let wide = |l: &[u32; 2]| (l[1] as u64) << 32 | l[0] as u64;
        assert_eq!(wide(&s), wide(&a) + wide(&b));
        let mut out = [0u32; 4];
        mul(&a, &b, &mut out);
        let prod = wide(&a) as u128 * wide(&b) as u128;
        let got = (0..4).fold(0u128, |acc, i| acc | (out[i] as u128) << (32 * i));
        assert_eq!(got, prod);
        assert_eq!(highest_bit(&[0u32, 1 << 31]), Some(63));
        let mut l = [0x8000_0001u32, 0x8000_0000];
        assert!(shr_in_place_sticky(&mut l, 1));
        assert_eq!(l, [0x4000_0000, 0x4000_0000]);
    }

    /// Bit-at-a-time restoring long division — slow but obviously
    /// correct; the differential reference for `div_rem_knuth`.
    fn div_rem_bitwise(num: &[u64], den: &[u64]) -> (Vec<u64>, Vec<u64>) {
        let qlen = num.len() - den.len() + 1;
        let mut q = vec![0u64; qlen];
        let mut rem = num.to_vec();
        let db = highest_bit(den).expect("zero divisor");
        let Some(nb) = highest_bit(num) else {
            return (q, rem);
        };
        if nb < db {
            return (q, rem);
        }
        let shift = nb - db;
        let mut d = vec![0u64; rem.len()];
        d[..den.len()].copy_from_slice(den);
        shl_in_place(&mut d, shift as u32);
        for i in (0..=shift).rev() {
            if cmp_same_len(&rem, &d) != Ordering::Less {
                let mut t = vec![0u64; rem.len()];
                let borrow = sub_same_len(&rem, &d, &mut t);
                assert!(!borrow);
                rem = t;
                add_bit(&mut q, i);
            }
            shr_in_place_sticky(&mut d, 1);
        }
        (q, rem)
    }

    fn check_division(num: &[u64], den: &[u64]) {
        let (q, r) = div_rem_knuth(num, den);
        assert_eq!(q.len(), num.len() - den.len() + 1);
        assert_eq!(r.len(), den.len());
        // Identity: q*den + r == num, with r < den.
        assert_eq!(
            cmp_same_len(&r, den),
            Ordering::Less,
            "remainder >= divisor"
        );
        let mut prod = vec![0u64; q.len() + den.len()];
        mul(&q, den, &mut prod);
        let mut rr = vec![0u64; prod.len()];
        rr[..r.len()].copy_from_slice(&r);
        let mut sum = vec![0u64; prod.len()];
        assert!(!add_same_len(&prod, &rr, &mut sum));
        let mut nn = vec![0u64; prod.len()];
        nn[..num.len()].copy_from_slice(num);
        assert_eq!(sum, nn, "q*den + r != num for num={num:?} den={den:?}");
        // And against the bitwise reference.
        let (q2, r2) = div_rem_bitwise(num, den);
        assert!(is_zero(&r2[den.len()..]), "reference remainder too wide");
        assert_eq!(q, q2);
        assert_eq!(&r[..], &r2[..den.len()]);
    }

    #[test]
    fn knuth_division_structured_sweep() {
        // Structured operand patterns chosen to exercise the qhat
        // estimate clamp (top limbs equal), the refinement decrements,
        // and the rare add-back path.
        const S: [u64; 5] = [0, 1, u64::MAX, 1 << 63, (1 << 63) - 1];
        const T: [u64; 4] = [1 << 63, (1 << 63) + 1, u64::MAX, u64::MAX - 1];
        for &d0 in &S {
            for &d1 in &T {
                let den = [d0, d1];
                for &a in &S {
                    for &b in &S {
                        for &c in &S {
                            for &d in &S {
                                check_division(&[a, b, c, d], &den);
                            }
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn knuth_division_single_limb_divisor() {
        check_division(&[7, 0, 0], &[1 << 63]);
        check_division(&[u64::MAX, u64::MAX, u64::MAX], &[u64::MAX]);
        check_division(&[0x1234_5678_9ABC_DEF0, 42], &[(1 << 63) + 12345]);
    }

    #[test]
    fn knuth_division_known_add_back_shape() {
        // den just above B/2 with a zero second limb forces qhat
        // overestimates; include the canonical shapes from Knuth 4.3.1.
        check_division(&[0, 0, 1 << 63, (1 << 63) - 1], &[0, 1 << 63]);
        check_division(&[0, u64::MAX, u64::MAX - 1, 1 << 63], &[u64::MAX, 1 << 63]);
        check_division(&[0, 0, 0, 1 << 63], &[1, 1 << 63]);
    }

    #[test]
    fn knuth_division_u32_limbs() {
        let num = [0xFFFF_FFFFu32, 0x8000_0001, 0x7FFF_FFFF, 0x9234_5678];
        let den = [0x0000_0003u32, 0x8000_0000];
        let (q, r) = div_rem_knuth(&num, &den);
        let wide = |l: &[u32]| {
            l.iter()
                .enumerate()
                .fold(0u128, |acc, (i, &x)| acc | (x as u128) << (32 * i))
        };
        let (nw, dw) = (wide(&num), wide(&den));
        assert_eq!(wide(&q), nw / dw);
        assert_eq!(wide(&r), nw % dw);
    }

    #[test]
    fn fixed_kernels_match_slice_kernels() {
        let a = [0x0123_4567_89AB_CDEFu64, u64::MAX, 7, 1 << 63];
        let b = [u64::MAX, 1, u64::MAX - 1, (1 << 63) - 1];
        let (s, carry) = fixed::add(&a, &b);
        let mut s2 = [0u64; 4];
        assert_eq!(carry, add_same_len(&a, &b, &mut s2));
        assert_eq!(s, s2);
        let (d, borrow) = fixed::sub(&a, &b);
        let mut d2 = [0u64; 4];
        assert_eq!(borrow, sub_same_len(&a, &b, &mut d2));
        assert_eq!(d, d2);
        assert_eq!(fixed::cmp(&a, &b), cmp_same_len(&a, &b));
        let p: [u64; 8] = fixed::mul(&a, &b);
        let mut p2 = [0u64; 8];
        mul(&a, &b, &mut p2);
        assert_eq!(p, p2);
        let a2 = [a[0], a[1]];
        let b2 = [b[0], b[1]];
        let p_small: [u64; 4] = fixed::mul(&a2, &b2);
        let mut p_small2 = [0u64; 4];
        mul(&a2, &b2, &mut p_small2);
        assert_eq!(p_small, p_small2);
    }
}
