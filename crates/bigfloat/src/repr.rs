//! The [`BigFloat`] representation and the shared normalize-and-round core.

use crate::limb;

/// Maximum supported precision, in bits.
pub const MAX_PREC: u32 = 16_384;

/// Minimum supported precision, in bits.
pub const MIN_PREC: u32 = 2;

/// Default working precision (matches the paper's 256-bit MPFR oracle).
pub const DEFAULT_PREC: u32 = 256;

/// Sign of a [`BigFloat`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Sign {
    /// Non-negative.
    Pos,
    /// Negative.
    Neg,
}

impl Sign {
    /// Flips the sign.
    #[must_use]
    pub fn negate(self) -> Sign {
        match self {
            Sign::Pos => Sign::Neg,
            Sign::Neg => Sign::Pos,
        }
    }

    /// XOR of two signs: the sign of a product or quotient.
    #[must_use]
    pub fn xor(self, other: Sign) -> Sign {
        if self == other {
            Sign::Pos
        } else {
            Sign::Neg
        }
    }

    /// `+1.0` or `-1.0`.
    #[must_use]
    pub fn to_f64(self) -> f64 {
        match self {
            Sign::Pos => 1.0,
            Sign::Neg => -1.0,
        }
    }
}

/// Classification of a [`BigFloat`] value.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Kind {
    /// Exact zero (unsigned; `BigFloat` has a single zero, like posit).
    Zero,
    /// Finite nonzero number.
    Normal,
    /// Signed infinity (produced by overflow of the exponent range or
    /// division by zero).
    Inf,
    /// Not a number.
    Nan,
}

/// An arbitrary-precision binary floating-point number.
///
/// `BigFloat` plays the role of the 256-bit MPFR oracle in the paper: a
/// reference number system with enough precision and range that every
/// 64-bit format under study can be evaluated against it.
///
/// A `Normal` value is `(-1)^sign * 1.f * 2^exp` where the significand
/// `1.f` is stored in `limbs` (little-endian, most-significant bit of the
/// top limb always set) and carries `prec` significant bits. The exponent
/// is an `i64`, so magnitudes like `2^-2_900_000` (VICAR likelihoods) are
/// representable with room to spare.
///
/// # Examples
///
/// ```
/// use compstat_bigfloat::{BigFloat, Context};
///
/// let ctx = Context::new(256);
/// let x = BigFloat::from_f64(0.3);
/// let y = ctx.mul(&x, &x);
/// assert!((y.to_f64() - 0.09).abs() < 1e-15);
/// ```
#[derive(Clone, Debug)]
pub struct BigFloat {
    sign: Sign,
    kind: Kind,
    /// Binary exponent: value magnitude lies in `[2^exp, 2^(exp+1))`.
    exp: i64,
    /// Significand limbs, little-endian, top bit of the last limb set.
    limbs: Vec<u64>,
    /// Precision (significant bits) this value was rounded to.
    prec: u32,
}

impl BigFloat {
    /// The single zero value.
    #[must_use]
    pub fn zero() -> BigFloat {
        BigFloat {
            sign: Sign::Pos,
            kind: Kind::Zero,
            exp: 0,
            limbs: Vec::new(),
            prec: DEFAULT_PREC,
        }
    }

    /// Positive or negative infinity.
    #[must_use]
    pub fn infinity(sign: Sign) -> BigFloat {
        BigFloat {
            sign,
            kind: Kind::Inf,
            exp: 0,
            limbs: Vec::new(),
            prec: DEFAULT_PREC,
        }
    }

    /// Not-a-number.
    #[must_use]
    pub fn nan() -> BigFloat {
        BigFloat {
            sign: Sign::Pos,
            kind: Kind::Nan,
            exp: 0,
            limbs: Vec::new(),
            prec: DEFAULT_PREC,
        }
    }

    /// One, at default precision.
    #[must_use]
    pub fn one() -> BigFloat {
        BigFloat::from_u64(1)
    }

    /// The sign. Zero and NaN report [`Sign::Pos`].
    #[must_use]
    pub fn sign(&self) -> Sign {
        self.sign
    }

    /// The value classification.
    #[must_use]
    pub fn kind(&self) -> Kind {
        self.kind
    }

    /// True if the value is exactly zero.
    #[must_use]
    pub fn is_zero(&self) -> bool {
        self.kind == Kind::Zero
    }

    /// True if the value is finite (zero or normal).
    #[must_use]
    pub fn is_finite(&self) -> bool {
        matches!(self.kind, Kind::Zero | Kind::Normal)
    }

    /// True if the value is NaN.
    #[must_use]
    pub fn is_nan(&self) -> bool {
        self.kind == Kind::Nan
    }

    /// Binary exponent: the magnitude lies in `[2^exp, 2^(exp+1))`.
    ///
    /// This is the quantity plotted on the x-axes of Figures 1, 3 and 9 of
    /// the paper.
    ///
    /// Returns `None` for zero, infinity and NaN.
    #[must_use]
    pub fn exponent(&self) -> Option<i64> {
        match self.kind {
            Kind::Normal => Some(self.exp),
            _ => None,
        }
    }

    /// The precision (in significant bits) this value carries.
    #[must_use]
    pub fn precision(&self) -> u32 {
        self.prec
    }

    /// Read-only view of the significand limbs (little-endian).
    ///
    /// Empty for zero/inf/NaN; otherwise the top bit of the last limb is
    /// set (the explicit leading `1.` of the significand).
    #[must_use]
    pub fn limbs(&self) -> &[u64] {
        &self.limbs
    }

    /// Negation (exact).
    #[must_use]
    pub fn neg(&self) -> BigFloat {
        let mut r = self.clone();
        if !matches!(r.kind, Kind::Zero | Kind::Nan) {
            r.sign = r.sign.negate();
        }
        r
    }

    /// Absolute value (exact).
    #[must_use]
    pub fn abs(&self) -> BigFloat {
        let mut r = self.clone();
        if r.kind != Kind::Nan {
            r.sign = Sign::Pos;
        }
        r
    }

    /// Multiplies by `2^k` (exact; adjusts the exponent only).
    ///
    /// Saturates if the `i64` exponent would overflow, mirroring the
    /// rounding core (`from_raw_wide`): positive overflow becomes the
    /// infinity *of the operand's sign*, while negative overflow
    /// becomes the single **unsigned** zero — `(-x).mul_pow2(i64::MIN)`
    /// loses the sign, because this `BigFloat` has no negative zero.
    /// Specials (zero, infinities, NaN) pass through unchanged for any
    /// `k`. The tiered backend's promotion/demotion seam relies on
    /// both saturation directions being exactly these values.
    #[must_use]
    pub fn mul_pow2(&self, k: i64) -> BigFloat {
        let mut r = self.clone();
        if r.kind == Kind::Normal {
            match r.exp.checked_add(k) {
                Some(e) => r.exp = e,
                None if k > 0 => return BigFloat::infinity(r.sign),
                None => return BigFloat::zero(),
            }
        }
        r
    }

    /// Builds a `BigFloat` from raw parts, normalizing and rounding to
    /// `prec` bits (round to nearest, ties to even).
    ///
    /// `limbs` is an arbitrary (possibly unnormalized) magnitude; `exp` is
    /// the weight of bit `top` where `top` is the index of the highest set
    /// bit — i.e. the raw value is `limbs * 2^(exp - top)`. `sticky_in`
    /// reports whether nonzero bits were already discarded below the
    /// represented ones.
    ///
    /// This is the single rounding point shared by all arithmetic.
    #[must_use]
    pub(crate) fn from_raw(
        sign: Sign,
        exp_of_top_bit: i64,
        limbs: Vec<u64>,
        sticky_in: bool,
        prec: u32,
    ) -> BigFloat {
        BigFloat::from_raw_wide(sign, exp_of_top_bit as i128, limbs, sticky_in, prec)
    }

    /// [`BigFloat::from_raw`] with a wide exponent: arithmetic computes
    /// the exponent of the top bit in `i128` (sums and differences of
    /// `i64` exponents plus bit-index adjustments cannot overflow it)
    /// and the final value saturates to infinity/zero if it leaves the
    /// `i64` range, mirroring [`BigFloat::mul_pow2`].
    #[must_use]
    pub(crate) fn from_raw_wide(
        sign: Sign,
        exp_of_top_bit: i128,
        mut limbs: Vec<u64>,
        sticky_in: bool,
        prec: u32,
    ) -> BigFloat {
        debug_assert!((MIN_PREC..=MAX_PREC).contains(&prec));
        let Some(top) = limb::highest_bit(&limbs) else {
            // All bits zero. If sticky is set the true value was a tiny
            // nonzero residue; rounding to nearest still yields zero.
            return BigFloat::zero();
        };
        // Bit index (from LSB) of the lowest *kept* bit.
        // We keep bits [top - prec + 1 ..= top].
        let keep_low = top as i64 - prec as i64 + 1;
        let mut exp = exp_of_top_bit;
        let mut sticky = sticky_in;
        let mut round_up = false;
        if keep_low > 0 {
            let keep_low = keep_low as u64;
            let round_bit = limb::get_bit(&limbs, keep_low - 1);
            sticky |= limb::any_bit_below(&limbs, keep_low - 1);
            let lsb = limb::get_bit(&limbs, keep_low);
            round_up = round_bit && (sticky || lsb);
            limb::clear_bits_below(&mut limbs, keep_low);
            if round_up {
                let carry = limb::add_bit(&mut limbs, keep_low);
                if carry {
                    // 0.111..1 rounded up to 1.000..0: magnitude became a
                    // power of two one position higher.
                    debug_assert!(limb::is_zero(&limbs));
                    let n = limbs.len();
                    limbs[n - 1] = 1 << 63;
                    exp += 1;
                    // Renormalize below with the fresh top bit.
                    return BigFloat::finish(sign, exp, limbs, prec);
                }
                // Rounding may have rippled into a new top bit
                // (e.g. 1.111 -> 10.000): recompute.
                let new_top = limb::highest_bit(&limbs).expect("nonzero after round up");
                exp += new_top as i128 - top as i128;
                return BigFloat::finish(sign, exp, limbs, prec);
            }
        }
        let _ = round_up;
        BigFloat::finish(sign, exp, limbs, prec)
    }

    /// Final normalization: left/right aligns so the top bit sits at the
    /// MSB of the top limb, trims to `ceil(prec/64)` limbs. Exponents
    /// outside the `i64` range saturate to infinity (overflow) or the
    /// single unsigned zero (underflow).
    fn finish(sign: Sign, exp: i128, mut limbs: Vec<u64>, prec: u32) -> BigFloat {
        let top = limb::highest_bit(&limbs).expect("finish on zero magnitude");
        let nlimbs = prec.div_ceil(limb::LIMB_BITS) as usize;
        let want_top = nlimbs as u64 * 64 - 1;
        match want_top.cmp(&top) {
            core::cmp::Ordering::Greater => {
                let shift = want_top - top;
                if limbs.len() < nlimbs {
                    limbs.resize(nlimbs, 0);
                }
                limb::shl_in_place(&mut limbs, shift as u32);
            }
            core::cmp::Ordering::Less => {
                let shift = top - want_top;
                // All bits below keep_low were already cleared by rounding,
                // so this shift discards only zeros.
                let sticky = limb::shr_in_place_sticky(&mut limbs, shift as u32);
                debug_assert!(!sticky, "normalization discarded set bits");
            }
            core::cmp::Ordering::Equal => {}
        }
        limbs.truncate(nlimbs);
        debug_assert_eq!(limbs.len(), nlimbs);
        debug_assert!(limbs[nlimbs - 1] >> 63 == 1);
        let Ok(exp) = i64::try_from(exp) else {
            return if exp > 0 {
                BigFloat::special(Kind::Inf, sign, prec)
            } else {
                BigFloat::special(Kind::Zero, Sign::Pos, prec)
            };
        };
        BigFloat {
            sign,
            kind: Kind::Normal,
            exp,
            limbs,
            prec,
        }
    }

    /// Re-rounds this value to a (typically lower) precision.
    #[must_use]
    pub fn round_to(&self, prec: u32) -> BigFloat {
        assert!(
            (MIN_PREC..=MAX_PREC).contains(&prec),
            "precision out of range"
        );
        match self.kind {
            Kind::Normal => {
                BigFloat::from_raw(self.sign, self.exp, self.limbs.clone(), false, prec)
            }
            _ => {
                let mut r = self.clone();
                r.prec = prec;
                r
            }
        }
    }

    /// Constructs from an unsigned integer (exact; precision grows to fit
    /// if the default does not).
    #[must_use]
    pub fn from_u64(v: u64) -> BigFloat {
        if v == 0 {
            return BigFloat::zero();
        }
        let top = 63 - v.leading_zeros() as i64;
        BigFloat::from_raw(Sign::Pos, top, vec![v], false, DEFAULT_PREC)
    }

    /// Constructs from a signed integer (exact).
    #[must_use]
    pub fn from_i64(v: i64) -> BigFloat {
        if v >= 0 {
            BigFloat::from_u64(v as u64)
        } else {
            BigFloat::from_u64(v.unsigned_abs()).neg()
        }
    }

    /// `2^k` exactly.
    #[must_use]
    pub fn pow2(k: i64) -> BigFloat {
        let mut one = BigFloat::from_u64(1);
        one.exp = k;
        one
    }

    /// Internal accessor used by sibling modules.
    pub(crate) fn parts(&self) -> (Sign, Kind, i64, &[u64], u32) {
        (self.sign, self.kind, self.exp, &self.limbs, self.prec)
    }

    /// Internal constructor for special values carrying a precision tag.
    pub(crate) fn special(kind: Kind, sign: Sign, prec: u32) -> BigFloat {
        BigFloat {
            sign,
            kind,
            exp: 0,
            limbs: Vec::new(),
            prec,
        }
    }

    /// Exact reconstruction from already-validated parts — the
    /// deserialization path ([`crate::serial`]). The caller must have
    /// checked the invariants (`prec` in range; for `Normal`:
    /// `ceil(prec/64)` limbs, top bit of the last limb set, bits below
    /// the precision cleared); no normalization or rounding happens
    /// here, so a round-trip is bit-exact.
    pub(crate) fn from_parts_exact(
        sign: Sign,
        kind: Kind,
        exp: i64,
        limbs: Vec<u64>,
        prec: u32,
    ) -> BigFloat {
        BigFloat {
            sign,
            kind,
            exp,
            limbs,
            prec,
        }
    }
}

impl Default for BigFloat {
    fn default() -> Self {
        BigFloat::zero()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_and_specials_classify() {
        assert!(BigFloat::zero().is_zero());
        assert!(BigFloat::zero().is_finite());
        assert!(BigFloat::nan().is_nan());
        assert!(!BigFloat::infinity(Sign::Neg).is_finite());
        assert_eq!(BigFloat::zero().exponent(), None);
    }

    #[test]
    fn from_u64_normalizes() {
        let x = BigFloat::from_u64(1);
        assert_eq!(x.exponent(), Some(0));
        let x = BigFloat::from_u64(6);
        assert_eq!(x.exponent(), Some(2)); // 6 = 1.5 * 2^2
        assert_eq!(x.limbs().last().copied(), Some(0b11u64 << 62));
    }

    #[test]
    fn pow2_is_exact() {
        let x = BigFloat::pow2(-2_900_000);
        assert_eq!(x.exponent(), Some(-2_900_000));
        let y = BigFloat::pow2(40);
        assert_eq!(y.to_f64(), (1u64 << 40) as f64);
    }

    #[test]
    fn rounding_ties_to_even() {
        // Value 0b1011 (11) rounded to 3 bits: keep 101|1, round bit 1,
        // sticky 0, lsb of kept = 1 -> round up to 0b110 << 1 = 12.
        let x = BigFloat::from_raw(Sign::Pos, 3, vec![0b1011], false, 3);
        assert_eq!(x.to_f64(), 12.0);
        // Value 0b1001 (9) to 3 bits: keep 100|1 round 1 sticky 0 lsb 0 ->
        // stay 0b100 << 1 = 8 (tie to even).
        let x = BigFloat::from_raw(Sign::Pos, 3, vec![0b1001], false, 3);
        assert_eq!(x.to_f64(), 8.0);
        // 0b10011 (19) to 3 bits: round bit 1, sticky 1 -> up -> 20.
        let x = BigFloat::from_raw(Sign::Pos, 4, vec![0b10011], false, 3);
        assert_eq!(x.to_f64(), 20.0);
    }

    #[test]
    fn rounding_carry_into_new_power_of_two() {
        // 0b1111 (15) rounded to 3 bits -> 16.
        let x = BigFloat::from_raw(Sign::Pos, 3, vec![0b1111], false, 3);
        assert_eq!(x.to_f64(), 16.0);
        assert_eq!(x.exponent(), Some(4));
    }

    #[test]
    fn round_to_lower_precision() {
        let x = BigFloat::from_f64(1.0 + f64::EPSILON);
        let y = x.round_to(10);
        assert_eq!(y.to_f64(), 1.0);
        assert_eq!(y.precision(), 10);
    }

    #[test]
    fn neg_abs() {
        let x = BigFloat::from_i64(-5);
        assert_eq!(x.sign(), Sign::Neg);
        assert_eq!(x.abs().to_f64(), 5.0);
        assert_eq!(x.neg().to_f64(), 5.0);
        assert_eq!(BigFloat::zero().neg().sign(), Sign::Pos);
    }

    #[test]
    fn mul_pow2_shifts_exponent() {
        let x = BigFloat::from_u64(3).mul_pow2(-10);
        assert_eq!(x.to_f64(), 3.0 / 1024.0);
    }

    #[test]
    fn mul_pow2_saturation_signs() {
        // Positive overflow keeps the operand's sign...
        let up = BigFloat::one().neg().mul_pow2(i64::MAX).mul_pow2(1);
        assert_eq!(up.kind(), Kind::Inf);
        assert_eq!(up.sign(), Sign::Neg);
        // ...negative overflow collapses to the single unsigned zero
        // (documented: there is no negative zero to preserve the sign).
        let down = BigFloat::one().neg().mul_pow2(i64::MIN).mul_pow2(-1);
        assert!(down.is_zero());
        assert_eq!(down.sign(), Sign::Pos);
        // Specials pass through unchanged at any shift.
        assert!(BigFloat::nan().mul_pow2(i64::MAX).is_nan());
        assert!(BigFloat::zero().mul_pow2(i64::MIN).is_zero());
        let inf = BigFloat::infinity(Sign::Neg).mul_pow2(i64::MIN);
        assert_eq!(inf.kind(), Kind::Inf);
        assert_eq!(inf.sign(), Sign::Neg);
    }
}
