//! Conversions between [`BigFloat`] and machine types.

use crate::limb;
use crate::repr::{BigFloat, Kind, Sign};

impl BigFloat {
    /// Constructs a `BigFloat` exactly from an `f64`.
    ///
    /// The result carries 53 bits of precision (the natural precision of
    /// the source); NaN, infinities and signed zeros map to their
    /// `BigFloat` counterparts (both zeros map to the single zero).
    #[must_use]
    pub fn from_f64(x: f64) -> BigFloat {
        let bits = x.to_bits();
        let sign = if bits >> 63 == 1 {
            Sign::Neg
        } else {
            Sign::Pos
        };
        let biased = ((bits >> 52) & 0x7FF) as i64;
        let frac = bits & ((1u64 << 52) - 1);
        match biased {
            0x7FF => {
                if frac == 0 {
                    BigFloat::special(Kind::Inf, sign, 53)
                } else {
                    BigFloat::special(Kind::Nan, Sign::Pos, 53)
                }
            }
            0 => {
                if frac == 0 {
                    BigFloat::special(Kind::Zero, Sign::Pos, 53)
                } else {
                    // Subnormal: value = frac * 2^-1074.
                    let top = 63 - frac.leading_zeros() as i64;
                    BigFloat::from_raw(sign, top - 1074, vec![frac], false, 53)
                }
            }
            _ => {
                let sig = frac | (1u64 << 52);
                // value = 1.frac * 2^(biased-1023); top bit (bit 52) has
                // that exponent.
                BigFloat::from_raw(sign, biased - 1023, vec![sig], false, 53)
            }
        }
    }

    /// Constructs a `BigFloat` exactly from an unsigned 128-bit significand.
    ///
    /// The highest set bit of `sig` is given the binary weight
    /// `2^exp_of_top`. This is the exact-import path used by the posit and
    /// log-space converters.
    ///
    /// Returns zero if `sig == 0`.
    #[must_use]
    pub fn from_scaled_u128(sign: Sign, sig: u128, exp_of_top: i64) -> BigFloat {
        if sig == 0 {
            return BigFloat::zero();
        }
        let limbs = vec![sig as u64, (sig >> 64) as u64];
        let top = limb::highest_bit(&limbs).expect("nonzero");
        let _ = top;
        BigFloat::from_raw(sign, exp_of_top, limbs, false, 128)
    }

    /// Converts to the nearest `f64` (round to nearest, ties to even),
    /// with IEEE 754 overflow to infinity, gradual underflow through the
    /// subnormal range, and underflow to zero below `2^-1075`.
    ///
    /// This is the paper's "cast down to binary64" step; values such as
    /// `2^-2_900_000` correctly collapse to `0.0` here while remaining
    /// exact inside `BigFloat`.
    #[must_use]
    pub fn to_f64(&self) -> f64 {
        let (sign, kind, exp, limbs, _) = self.parts();
        let sgn = match sign {
            Sign::Pos => 1.0f64,
            Sign::Neg => -1.0f64,
        };
        match kind {
            Kind::Zero => return 0.0,
            Kind::Inf => return sgn * f64::INFINITY,
            Kind::Nan => return f64::NAN,
            Kind::Normal => {}
        }
        if exp > 1024 {
            return sgn * f64::INFINITY;
        }
        if exp < -1076 {
            return sgn * 0.0;
        }
        // Top 64 significand bits (top bit set), sticky over the rest.
        let n = limbs.len();
        let m = limbs[n - 1];
        let mut sticky = limbs[..n - 1].iter().any(|&l| l != 0);

        // Number of significand bits representable at this exponent.
        let keep: i64 = if exp >= -1022 { 53 } else { 53 + (exp + 1022) };
        if keep <= 0 {
            // Magnitude in (0, 2^-1074): exp == -1075 means the value is in
            // [2^-1075, 2^-1074); exactly 2^-1075 ties to even (zero).
            if exp == -1075 {
                let exactly_half = m == 1u64 << 63 && !sticky;
                return if exactly_half {
                    sgn * 0.0
                } else {
                    sgn * f64::from_bits(1)
                };
            }
            return sgn * 0.0;
        }
        let keep = keep as u32; // 1..=53
        let kept = m >> (64 - keep);
        let round_bit = (m >> (63 - keep)) & 1 == 1;
        if 63 - keep > 0 {
            sticky |= m & ((1u64 << (63 - keep)) - 1) != 0;
        }
        let mut kept = kept;
        if round_bit && (sticky || kept & 1 == 1) {
            kept += 1;
        }
        let neg_bit = if sign == Sign::Neg { 1u64 << 63 } else { 0 };
        if exp >= -1022 {
            // Normal path: kept in [2^52, 2^53]; 2^53 promotes the exponent.
            let mut e = exp;
            if kept == 1u64 << 53 {
                kept >>= 1;
                e += 1;
            }
            if e > 1023 {
                return sgn * f64::INFINITY;
            }
            let bits = neg_bit | (((e + 1023) as u64) << 52) | (kept & ((1u64 << 52) - 1));
            f64::from_bits(bits)
        } else {
            // Subnormal path: result = kept * 2^-1074 with kept <= 2^52;
            // kept == 2^52 is the IEEE encoding of the smallest normal.
            f64::from_bits(neg_bit | kept)
        }
    }

    /// Rounds to the nearest `i64` (ties to even).
    ///
    /// Out-of-range values saturate: magnitudes at or above `2^63`
    /// (and `±inf`) return `i64::MIN`/`i64::MAX` by sign. **NaN is
    /// pinned to 0** — the deliberate choice here, matching zero
    /// rather than C's unspecified behavior, so a NaN argument fed to
    /// exponent-reduction code (e.g. `Context::exp`) produces a NaN
    /// result downstream instead of a saturation artifact. Callers
    /// that must distinguish NaN from zero check `is_nan()` first.
    #[must_use]
    pub fn to_i64_round(&self) -> i64 {
        let (sign, kind, exp, limbs, _) = self.parts();
        match kind {
            Kind::Zero | Kind::Nan => return 0,
            Kind::Inf => {
                return if sign == Sign::Neg {
                    i64::MIN
                } else {
                    i64::MAX
                }
            }
            Kind::Normal => {}
        }
        if exp < -1 {
            return 0;
        }
        if exp == -1 {
            // Magnitude in [0.5, 1): 0.5 exactly ties to 0, else 1.
            let n = limbs.len();
            let is_half = limbs[n - 1] == 1u64 << 63 && limbs[..n - 1].iter().all(|&l| l == 0);
            let v = if is_half { 0 } else { 1 };
            return if sign == Sign::Neg { -v } else { v };
        }
        if exp >= 63 {
            return if sign == Sign::Neg {
                i64::MIN
            } else {
                i64::MAX
            };
        }
        let n = limbs.len();
        let m = limbs[n - 1];
        let mut sticky = limbs[..n - 1].iter().any(|&l| l != 0);
        let keep = exp as u32 + 1; // integer bits
        let kept = m >> (64 - keep);
        let round_bit = (m >> (63 - keep)) & 1 == 1;
        if 63 - keep > 0 {
            sticky |= m & ((1u64 << (63 - keep)) - 1) != 0;
        }
        let mut kept = kept;
        if round_bit && (sticky || kept & 1 == 1) {
            kept += 1;
        }
        match sign {
            Sign::Neg if kept == 1u64 << 63 => i64::MIN,
            Sign::Neg => -(kept.min(i64::MAX as u64) as i64),
            Sign::Pos => kept.min(i64::MAX as u64) as i64,
        }
    }
}

impl From<f64> for BigFloat {
    fn from(x: f64) -> BigFloat {
        BigFloat::from_f64(x)
    }
}

impl From<u64> for BigFloat {
    fn from(x: u64) -> BigFloat {
        BigFloat::from_u64(x)
    }
}

impl From<i64> for BigFloat {
    fn from(x: i64) -> BigFloat {
        BigFloat::from_i64(x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f64_round_trip_exact() {
        let cases = [
            0.0,
            1.0,
            -1.0,
            0.3,
            1.5e308,
            -2.2e-308,
            f64::MIN_POSITIVE,
            f64::from_bits(1),        // min subnormal
            f64::from_bits(0xF_FFFF), // random subnormal
            f64::EPSILON,
            123456.789,
            -0.000123,
        ];
        for x in cases {
            assert_eq!(BigFloat::from_f64(x).to_f64(), x, "round-trip {x}");
        }
        assert!(BigFloat::from_f64(f64::NAN).to_f64().is_nan());
        assert_eq!(BigFloat::from_f64(f64::INFINITY).to_f64(), f64::INFINITY);
        assert_eq!(
            BigFloat::from_f64(f64::NEG_INFINITY).to_f64(),
            f64::NEG_INFINITY
        );
    }

    #[test]
    fn to_f64_underflows_below_subnormal_range() {
        assert_eq!(BigFloat::pow2(-1075).to_f64(), 0.0); // exact tie -> even -> 0
        assert_eq!(BigFloat::pow2(-1076).to_f64(), 0.0);
        assert_eq!(BigFloat::pow2(-2_900_000).to_f64(), 0.0);
        assert_eq!(BigFloat::pow2(-1074).to_f64(), f64::from_bits(1));
        // Just above the tie rounds up to the min subnormal.
        let just_above = &BigFloat::pow2(-1075) + &BigFloat::pow2(-1100);
        assert_eq!(just_above.to_f64(), f64::from_bits(1));
    }

    #[test]
    fn to_f64_overflow_to_infinity() {
        assert_eq!(BigFloat::pow2(1024).to_f64(), f64::INFINITY);
        assert_eq!(BigFloat::pow2(1024).neg().to_f64(), f64::NEG_INFINITY);
        assert_eq!(BigFloat::pow2(1023).to_f64(), 2.0f64.powi(1023));
        // 2^1024 - 2^971 is exactly f64::MAX.
        let x = BigFloat::pow2(1024);
        let v = &x - &BigFloat::pow2(971);
        assert_eq!(v.to_f64(), f64::MAX);
        // The midpoint between MAX and 2^1024 ties to even -> infinity
        // (IEEE overflow behavior).
        let mid = &x - &BigFloat::pow2(970);
        assert_eq!(mid.to_f64(), f64::INFINITY);
    }

    #[test]
    fn to_f64_subnormal_rounding() {
        // 3 * 2^-1075 = 1.5 * 2^-1074 -> rounds to 2 * 2^-1074 (ties even).
        let x = BigFloat::from_u64(3).mul_pow2(-1075);
        assert_eq!(x.to_f64(), f64::from_bits(2));
        // 5 * 2^-1076 = 1.25 * 2^-1074 -> rounds to 2^-1074.
        let x = BigFloat::from_u64(5).mul_pow2(-1076);
        assert_eq!(x.to_f64(), f64::from_bits(1));
    }

    #[test]
    fn from_scaled_u128_places_bits() {
        let x = BigFloat::from_scaled_u128(Sign::Pos, 0b11, 0);
        assert_eq!(x.to_f64(), 1.5);
        let y = BigFloat::from_scaled_u128(Sign::Neg, 1, -100);
        assert_eq!(y.to_f64(), -(2.0f64.powi(-100)));
        assert!(BigFloat::from_scaled_u128(Sign::Pos, 0, 5).is_zero());
    }

    #[test]
    fn to_i64_rounds_to_even() {
        assert_eq!(BigFloat::from_f64(2.5).to_i64_round(), 2);
        assert_eq!(BigFloat::from_f64(3.5).to_i64_round(), 4);
        assert_eq!(BigFloat::from_f64(-2.5).to_i64_round(), -2);
        assert_eq!(BigFloat::from_f64(0.5).to_i64_round(), 0);
        assert_eq!(BigFloat::from_f64(0.75).to_i64_round(), 1);
        assert_eq!(BigFloat::from_f64(-1234.49).to_i64_round(), -1234);
        assert_eq!(BigFloat::from_f64(1e30).to_i64_round(), i64::MAX);
        assert_eq!(BigFloat::zero().to_i64_round(), 0);
    }

    #[test]
    fn to_i64_round_pins_specials() {
        // NaN is pinned to 0 (documented semantics — callers that need
        // to tell NaN from zero check is_nan() first).
        assert_eq!(BigFloat::nan().to_i64_round(), 0);
        // Infinities saturate by sign, same as huge finite magnitudes.
        assert_eq!(BigFloat::infinity(Sign::Pos).to_i64_round(), i64::MAX);
        assert_eq!(BigFloat::infinity(Sign::Neg).to_i64_round(), i64::MIN);
        // Saturation threshold: 2^63 is out of range, 2^63 - 1 ulp in.
        assert_eq!(BigFloat::pow2(63).to_i64_round(), i64::MAX);
        assert_eq!(BigFloat::pow2(63).neg().to_i64_round(), i64::MIN);
        let below = &BigFloat::pow2(63) - &BigFloat::one();
        assert_eq!(below.to_i64_round(), i64::MAX); // 2^63 - 1
        assert_eq!(below.neg().to_i64_round(), -(i64::MAX));
    }

    #[test]
    fn to_f64_at_the_min_subnormal_boundary() {
        // 2^-1074 (the smallest subnormal) ± 1 ulp of the BigFloat
        // operand: below the halfway-to-zero point rounds down to 0,
        // at 2^-1074 exactly converts exactly, just above stays at
        // 2^-1074 until the next representable (2 * 2^-1074) midpoint.
        let min_sub = BigFloat::pow2(-1074);
        assert_eq!(min_sub.to_f64(), f64::from_bits(1));
        let just_below = &min_sub - &BigFloat::pow2(-1130);
        assert_eq!(just_below.to_f64(), f64::from_bits(1));
        let just_above = &min_sub + &BigFloat::pow2(-1130);
        assert_eq!(just_above.to_f64(), f64::from_bits(1));
        // The tie at 1.5 * 2^-1074 goes to even (= 2 * 2^-1074).
        let tie = &min_sub + &BigFloat::pow2(-1075);
        assert_eq!(tie.to_f64(), f64::from_bits(2));
        // And negative mirrors, sign preserved through the boundary.
        assert_eq!(min_sub.neg().to_f64(), -f64::from_bits(1));
        assert_eq!(just_below.neg().to_f64(), -f64::from_bits(1));
    }
}
