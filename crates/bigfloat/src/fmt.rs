//! Formatting for [`BigFloat`].

use crate::repr::{BigFloat, Kind, Sign};
use core::fmt;

impl BigFloat {
    /// Binary-scientific rendering: `±1.dddddd * 2^e` with the significand
    /// shown to roughly `digits` decimal places.
    ///
    /// Unlike full decimal conversion this is cheap even for exponents in
    /// the millions (e.g. the VICAR likelihood `2^-2_900_000`), which is
    /// why the paper reports magnitudes as base-2 exponents.
    #[must_use]
    pub fn to_sci_string(&self, digits: usize) -> String {
        match self.kind() {
            Kind::Zero => return "0".to_string(),
            Kind::Nan => return "NaN".to_string(),
            Kind::Inf => {
                return if self.sign() == Sign::Neg {
                    "-inf".to_string()
                } else {
                    "inf".to_string()
                }
            }
            Kind::Normal => {}
        }
        let e = self.exponent().expect("normal");
        // Significand in [1,2) as f64 (top 53 bits are plenty for display).
        let m = self.mul_pow2(-e).to_f64();
        let sign = if self.sign() == Sign::Neg { "-" } else { "" };
        format!("{sign}{m:.*} * 2^{e}", digits)
    }
}

impl fmt::Display for BigFloat {
    /// Displays in-range values as their nearest `f64`; values outside
    /// binary64's range fall back to binary-scientific notation.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.kind() {
            Kind::Zero => write!(f, "0"),
            Kind::Nan => write!(f, "NaN"),
            Kind::Inf => {
                write!(f, "{}inf", if self.sign() == Sign::Neg { "-" } else { "" })
            }
            Kind::Normal => {
                let e = self.exponent().expect("normal");
                if (-1020..=1020).contains(&e) {
                    write!(f, "{}", self.to_f64())
                } else {
                    write!(f, "{}", self.to_sci_string(6))
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_in_range() {
        assert_eq!(BigFloat::from_f64(1.5).to_string(), "1.5");
        assert_eq!(BigFloat::zero().to_string(), "0");
        assert_eq!(BigFloat::nan().to_string(), "NaN");
        assert_eq!(BigFloat::infinity(Sign::Neg).to_string(), "-inf");
    }

    #[test]
    fn display_out_of_range_uses_binary_sci() {
        let x = BigFloat::pow2(-2_900_000);
        assert_eq!(x.to_string(), "1.000000 * 2^-2900000");
        // 3 * 2^-100000 = 1.5 * 2^-99999.
        let y = BigFloat::from_u64(3).mul_pow2(-100_000);
        assert_eq!(y.to_sci_string(2), "1.50 * 2^-99999");
    }

    #[test]
    fn debug_is_nonempty() {
        assert!(!format!("{:?}", BigFloat::zero()).is_empty());
        assert!(!format!("{:?}", BigFloat::one()).is_empty());
    }
}
