//! Ordering and equality for [`BigFloat`].

use crate::repr::{BigFloat, Kind, Sign};
use core::cmp::Ordering;

impl BigFloat {
    /// Compares magnitudes (`|self|` vs `|other|`).
    ///
    /// Returns `None` if either value is NaN. Infinities compare larger
    /// than every finite value.
    #[must_use]
    pub fn cmp_abs(&self, other: &BigFloat) -> Option<Ordering> {
        let (_, ka, ea, la, _) = self.parts();
        let (_, kb, eb, lb, _) = other.parts();
        match (ka, kb) {
            (Kind::Nan, _) | (_, Kind::Nan) => None,
            (Kind::Inf, Kind::Inf) => Some(Ordering::Equal),
            (Kind::Inf, _) => Some(Ordering::Greater),
            (_, Kind::Inf) => Some(Ordering::Less),
            (Kind::Zero, Kind::Zero) => Some(Ordering::Equal),
            (Kind::Zero, _) => Some(Ordering::Less),
            (_, Kind::Zero) => Some(Ordering::Greater),
            (Kind::Normal, Kind::Normal) => Some(match ea.cmp(&eb) {
                Ordering::Equal => cmp_limbs_padded(la, lb),
                other => other,
            }),
        }
    }
}

/// Compares two normalized limb magnitudes that may differ in length;
/// the shorter is treated as zero-extended at the least-significant end.
fn cmp_limbs_padded(a: &[u64], b: &[u64]) -> Ordering {
    let mut i = a.len();
    let mut j = b.len();
    while i > 0 && j > 0 {
        i -= 1;
        j -= 1;
        match a[i].cmp(&b[j]) {
            Ordering::Equal => {}
            other => return other,
        }
    }
    if a[..i].iter().any(|&l| l != 0) {
        return Ordering::Greater;
    }
    if b[..j].iter().any(|&l| l != 0) {
        return Ordering::Less;
    }
    Ordering::Equal
}

impl PartialEq for BigFloat {
    fn eq(&self, other: &BigFloat) -> bool {
        self.partial_cmp(other) == Some(Ordering::Equal)
    }
}

impl PartialOrd for BigFloat {
    fn partial_cmp(&self, other: &BigFloat) -> Option<Ordering> {
        let (sa, ka, ..) = self.parts();
        let (sb, kb, ..) = other.parts();
        if ka == Kind::Nan || kb == Kind::Nan {
            return None;
        }
        let neg_a = sa == Sign::Neg && ka != Kind::Zero;
        let neg_b = sb == Sign::Neg && kb != Kind::Zero;
        match (neg_a, neg_b) {
            (false, true) => Some(Ordering::Greater),
            (true, false) => Some(Ordering::Less),
            (false, false) => self.cmp_abs(other),
            (true, true) => other.cmp_abs(self),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_matches_f64() {
        let pairs = [
            (1.0, 2.0),
            (-1.0, 1.0),
            (-2.0, -1.0),
            (0.0, 1e-300),
            (0.3, 0.2999999),
            (1e300, 1e299),
            (-0.0, 0.0),
        ];
        for (x, y) in pairs {
            let bx = BigFloat::from_f64(x);
            let by = BigFloat::from_f64(y);
            assert_eq!(bx.partial_cmp(&by), x.partial_cmp(&y), "cmp({x}, {y})");
        }
    }

    #[test]
    fn nan_is_unordered() {
        let nan = BigFloat::nan();
        assert_eq!(nan.partial_cmp(&BigFloat::one()), None);
        assert!(nan != nan);
    }

    #[test]
    fn huge_exponents_order_correctly() {
        let a = BigFloat::pow2(-2_900_000);
        let b = BigFloat::pow2(-1_000_000);
        assert!(a < b);
        assert!(a > BigFloat::zero());
        assert!(a.neg() < BigFloat::zero());
        assert!(BigFloat::infinity(Sign::Pos) > b);
        assert!(BigFloat::infinity(Sign::Neg) < a.neg());
    }

    #[test]
    fn equal_values_with_different_precision() {
        let a = BigFloat::from_f64(1.5);
        let b = a.round_to(500);
        assert_eq!(a, b);
        let c = &BigFloat::from_f64(0.75) + &BigFloat::from_f64(0.75);
        assert_eq!(a, c);
    }
}
