//! Correctly-rounded arithmetic: add, sub, mul, div.
//!
//! All operations round to the precision of the [`Context`] (round to
//! nearest, ties to even) in a single rounding step — there is no double
//! rounding. Working arrays keep at least `prec + 66` bits plus a sticky
//! bit, which is sufficient for correct RNE results of `+ - * /`.

use crate::limb;
use crate::repr::{BigFloat, Kind, Sign, DEFAULT_PREC, MAX_PREC, MIN_PREC};

/// An arithmetic context carrying the target precision.
///
/// Mirrors MPFR's model: every operation rounds its mathematically exact
/// result to `prec` significant bits.
///
/// # Examples
///
/// ```
/// use compstat_bigfloat::{BigFloat, Context};
///
/// let ctx = Context::new(256);
/// let a = BigFloat::pow2(-120_000);
/// let b = ctx.mul(&a, &a);
/// assert_eq!(b.exponent(), Some(-240_000));
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Context {
    prec: u32,
}

impl Context {
    /// Creates a context with the given precision in bits.
    ///
    /// # Panics
    ///
    /// Panics if `prec` is outside `[2, 16384]`.
    #[must_use]
    pub fn new(prec: u32) -> Context {
        assert!(
            (MIN_PREC..=MAX_PREC).contains(&prec),
            "precision {prec} out of [2, 16384]"
        );
        Context { prec }
    }

    /// The context's precision in bits.
    #[must_use]
    pub fn prec(&self) -> u32 {
        self.prec
    }

    /// Addition, correctly rounded to the context precision.
    #[must_use]
    pub fn add(&self, a: &BigFloat, b: &BigFloat) -> BigFloat {
        add_signed(a, b, false, self.prec)
    }

    /// Subtraction, correctly rounded to the context precision.
    #[must_use]
    pub fn sub(&self, a: &BigFloat, b: &BigFloat) -> BigFloat {
        add_signed(a, b, true, self.prec)
    }

    /// Multiplication, correctly rounded to the context precision.
    #[must_use]
    pub fn mul(&self, a: &BigFloat, b: &BigFloat) -> BigFloat {
        mul_impl(a, b, self.prec)
    }

    /// Division, correctly rounded to the context precision.
    #[must_use]
    pub fn div(&self, a: &BigFloat, b: &BigFloat) -> BigFloat {
        div_impl(a, b, self.prec)
    }

    /// Sums a sequence left-to-right, rounding after each partial sum
    /// (the same associativity a software loop over `+=` would have).
    #[must_use]
    pub fn sum<'a, I: IntoIterator<Item = &'a BigFloat>>(&self, values: I) -> BigFloat {
        let mut acc = BigFloat::zero();
        for v in values {
            acc = self.add(&acc, v);
        }
        acc
    }

    /// Rounds `x` to the context precision (round to nearest, ties to
    /// even) — MPFR's `mpfr_set` with a target precision. Idempotent:
    /// a value already representable at `prec` bits passes unchanged,
    /// so `ctx.round(&ctx.round(x)) == ctx.round(x)` always.
    #[must_use]
    pub fn round(&self, x: &BigFloat) -> BigFloat {
        x.round_to(self.prec)
    }
}

impl Default for Context {
    fn default() -> Self {
        Context { prec: DEFAULT_PREC }
    }
}

fn nlimbs(prec: u32) -> usize {
    prec.div_ceil(limb::LIMB_BITS) as usize
}

/// Places `src` (normalized: top bit of last limb set) into a fresh array
/// of `wl` limbs with its top bit at bit index `wl*64 - 2` (one headroom
/// bit below the array MSB).
fn place_with_headroom(src: &[u64], wl: usize) -> Vec<u64> {
    debug_assert!(wl > src.len());
    let mut arr = vec![0u64; wl];
    // Copy into the high limbs, then shift right by 1 to create headroom.
    arr[wl - src.len()..].copy_from_slice(src);
    let sticky = limb::shr_in_place_sticky(&mut arr, 1);
    debug_assert!(!sticky, "normalized operand had a set LSB beyond range");
    arr
}

fn add_signed(a: &BigFloat, b: &BigFloat, negate_b: bool, prec: u32) -> BigFloat {
    let (sa, ka, ea, la, _) = a.parts();
    let (sb0, kb, eb, lb, _) = b.parts();
    let sb = if negate_b && !matches!(kb, Kind::Zero | Kind::Nan) {
        sb0.negate()
    } else {
        sb0
    };
    match (ka, kb) {
        (Kind::Nan, _) | (_, Kind::Nan) => return BigFloat::special(Kind::Nan, Sign::Pos, prec),
        (Kind::Inf, Kind::Inf) => {
            return if sa == sb {
                BigFloat::special(Kind::Inf, sa, prec)
            } else {
                BigFloat::special(Kind::Nan, Sign::Pos, prec)
            };
        }
        (Kind::Inf, _) => return BigFloat::special(Kind::Inf, sa, prec),
        (_, Kind::Inf) => return BigFloat::special(Kind::Inf, sb, prec),
        (Kind::Zero, Kind::Zero) => return BigFloat::special(Kind::Zero, Sign::Pos, prec),
        (Kind::Zero, Kind::Normal) => {
            let r = b.round_to(prec);
            return if negate_b { r.neg() } else { r };
        }
        (Kind::Normal, Kind::Zero) => return a.round_to(prec),
        (Kind::Normal, Kind::Normal) => {}
    }

    // Order so that |x| >= |y|.
    let a_larger = match ea.cmp(&eb) {
        core::cmp::Ordering::Greater => true,
        core::cmp::Ordering::Less => false,
        core::cmp::Ordering::Equal => cmp_magnitude(la, lb) != core::cmp::Ordering::Less,
    };
    let (sx, ex, lx, sy, ey, ly) = if a_larger {
        (sa, ea, la, sb, eb, lb)
    } else {
        (sb, eb, lb, sa, ea, la)
    };

    let wl = lx.len().max(ly.len()).max(nlimbs(prec)) + 2;
    let top_pos = wl as u64 * 64 - 2;
    let ax = place_with_headroom(lx, wl);
    let mut ay = place_with_headroom(ly, wl);
    // ex >= ey by construction; the difference can still overflow i64 for
    // astronomically separated exponents, which simply means "y is dust".
    let d = ex.checked_sub(ey).map(|d| d as u64);
    let sticky_y = match d {
        Some(d) if d <= top_pos => limb::shr_in_place_sticky(&mut ay, d as u32),
        _ => {
            ay.fill(0);
            true
        }
    };

    let same_sign = sx == sy;
    let mut out = vec![0u64; wl];
    let mut sticky = sticky_y;
    if same_sign {
        let carry = limb::add_same_len(&ax, &ay, &mut out);
        debug_assert!(!carry, "headroom bit absorbed the carry");
    } else {
        // |x| >= |y_shifted| (strictly, unless d == 0 where sticky_y is
        // false). Equal magnitudes cancel to zero.
        if limb::cmp_same_len(&ax, &ay) == core::cmp::Ordering::Equal && !sticky_y {
            return BigFloat::special(Kind::Zero, Sign::Pos, prec);
        }
        let borrow = limb::sub_same_len(&ax, &ay, &mut out);
        debug_assert!(!borrow, "subtrahend exceeded minuend");
        if sticky_y {
            // True result is out - epsilon with epsilon in (0,1) units of
            // the array LSB; re-expressing as (out-1) + (1-epsilon) keeps
            // the residue positive so the sticky bit rounds correctly.
            let mut one = vec![0u64; wl];
            one[0] = 1;
            let mut dec = vec![0u64; wl];
            let borrow = limb::sub_same_len(&out, &one, &mut dec);
            debug_assert!(!borrow);
            out = dec;
            sticky = true;
        }
    }

    let Some(h) = limb::highest_bit(&out) else {
        return BigFloat::special(Kind::Zero, Sign::Pos, prec);
    };
    let exp_of_top = ex - (top_pos as i64 - h as i64);
    BigFloat::from_raw(sx, exp_of_top, out, sticky, prec)
}

fn cmp_magnitude(a: &[u64], b: &[u64]) -> core::cmp::Ordering {
    // Both normalized with the top bit of the last limb set; compare from
    // the top down, treating the shorter as zero-extended at the bottom.
    let mut i = a.len();
    let mut j = b.len();
    while i > 0 && j > 0 {
        i -= 1;
        j -= 1;
        match a[i].cmp(&b[j]) {
            core::cmp::Ordering::Equal => {}
            other => return other,
        }
    }
    while i > 0 {
        i -= 1;
        if a[i] != 0 {
            return core::cmp::Ordering::Greater;
        }
    }
    while j > 0 {
        j -= 1;
        if b[j] != 0 {
            return core::cmp::Ordering::Less;
        }
    }
    core::cmp::Ordering::Equal
}

fn mul_impl(a: &BigFloat, b: &BigFloat, prec: u32) -> BigFloat {
    let (sa, ka, ea, la, _) = a.parts();
    let (sb, kb, eb, lb, _) = b.parts();
    let sign = sa.xor(sb);
    match (ka, kb) {
        (Kind::Nan, _) | (_, Kind::Nan) => return BigFloat::special(Kind::Nan, Sign::Pos, prec),
        (Kind::Inf, Kind::Zero) | (Kind::Zero, Kind::Inf) => {
            return BigFloat::special(Kind::Nan, Sign::Pos, prec)
        }
        (Kind::Inf, _) | (_, Kind::Inf) => return BigFloat::special(Kind::Inf, sign, prec),
        (Kind::Zero, _) | (_, Kind::Zero) => return BigFloat::special(Kind::Zero, Sign::Pos, prec),
        (Kind::Normal, Kind::Normal) => {}
    }
    let mut out = vec![0u64; la.len() + lb.len()];
    limb::mul(la, lb, &mut out);
    let top_a = la.len() as i64 * 64 - 1;
    let top_b = lb.len() as i64 * 64 - 1;
    let h = limb::highest_bit(&out).expect("product of normals is nonzero");
    let exp_of_top = match ea.checked_add(eb) {
        Some(e) => e - top_a - top_b + h as i64,
        None => {
            return if (ea > 0) == (eb > 0) {
                // Both huge in the same direction: overflow.
                if ea > 0 {
                    BigFloat::special(Kind::Inf, sign, prec)
                } else {
                    BigFloat::special(Kind::Zero, Sign::Pos, prec)
                }
            } else {
                // Opposite huge exponents cancel; cannot overflow i64 in
                // practice because |ea|,|eb| <= i64::MAX/2 is enforced
                // nowhere, but reaching here requires astronomic inputs.
                BigFloat::special(Kind::Nan, Sign::Pos, prec)
            };
        }
    };
    BigFloat::from_raw(sign, exp_of_top, out, false, prec)
}

fn div_impl(a: &BigFloat, b: &BigFloat, prec: u32) -> BigFloat {
    let (sa, ka, ea, la, _) = a.parts();
    let (sb, kb, eb, lb, _) = b.parts();
    let sign = sa.xor(sb);
    match (ka, kb) {
        (Kind::Nan, _) | (_, Kind::Nan) => return BigFloat::special(Kind::Nan, Sign::Pos, prec),
        (Kind::Inf, Kind::Inf) => return BigFloat::special(Kind::Nan, Sign::Pos, prec),
        (Kind::Inf, _) => return BigFloat::special(Kind::Inf, sign, prec),
        (_, Kind::Inf) => return BigFloat::special(Kind::Zero, Sign::Pos, prec),
        (Kind::Zero, Kind::Zero) => return BigFloat::special(Kind::Nan, Sign::Pos, prec),
        (Kind::Zero, Kind::Normal) => return BigFloat::special(Kind::Zero, Sign::Pos, prec),
        (Kind::Normal, Kind::Zero) => return BigFloat::special(Kind::Inf, sign, prec),
        (Kind::Normal, Kind::Normal) => {}
    }

    // Restoring binary long division on magnitudes aligned to a common
    // width, producing prec + 3 quotient bits plus an exact sticky.
    let wl = la.len().max(lb.len()) + 1;
    let mut r = vec![0u64; wl];
    let mut den = vec![0u64; wl];
    // Align both tops to bit wl*64 - 2 (headroom for the shift).
    r[wl - la.len()..].copy_from_slice(la);
    den[wl - lb.len()..].copy_from_slice(lb);
    limb::shr_in_place_sticky(&mut r, 1);
    limb::shr_in_place_sticky(&mut den, 1);

    let qbits = prec as u64 + 3;
    let qlimbs = qbits.div_ceil(64) as usize;
    let mut q = vec![0u64; qlimbs];
    let mut tmp = vec![0u64; wl];
    for i in 0..qbits {
        if limb::cmp_same_len(&r, &den) != core::cmp::Ordering::Less {
            let borrow = limb::sub_same_len(&r, &den, &mut tmp);
            debug_assert!(!borrow);
            core::mem::swap(&mut r, &mut tmp);
            limb::add_bit(&mut q, qbits - 1 - i);
        }
        limb::shl_in_place(&mut r, 1);
    }
    let sticky = !limb::is_zero(&r);
    let Some(h) = limb::highest_bit(&q) else {
        // Quotient in (1/2, 2) always produces at least one bit.
        unreachable!("quotient of normals is nonzero");
    };
    // Bit (qbits-1) of q carries weight 2^0 of the aligned ratio.
    let exp_of_top = ea - eb - (qbits as i64 - 1) + h as i64;
    BigFloat::from_raw(sign, exp_of_top, q, sticky, prec)
}

impl core::ops::Neg for &BigFloat {
    type Output = BigFloat;
    fn neg(self) -> BigFloat {
        BigFloat::neg(self)
    }
}

macro_rules! bin_op {
    ($trait:ident, $method:ident, $ctx_method:ident) => {
        impl core::ops::$trait<&BigFloat> for &BigFloat {
            type Output = BigFloat;
            fn $method(self, rhs: &BigFloat) -> BigFloat {
                let prec = self.precision().max(rhs.precision());
                Context::new(prec).$ctx_method(self, rhs)
            }
        }
        impl core::ops::$trait<BigFloat> for BigFloat {
            type Output = BigFloat;
            fn $method(self, rhs: BigFloat) -> BigFloat {
                (&self).$method(&rhs)
            }
        }
    };
}

bin_op!(Add, add, add);
bin_op!(Sub, sub, sub);
bin_op!(Mul, mul, mul);
bin_op!(Div, div, div);

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx() -> Context {
        Context::new(256)
    }

    #[test]
    fn add_small_integers() {
        let c = ctx();
        let r = c.add(&BigFloat::from_u64(2), &BigFloat::from_u64(3));
        assert_eq!(r.to_f64(), 5.0);
    }

    #[test]
    fn add_matches_f64_on_random_values() {
        let c = Context::new(53);
        let cases: [(f64, f64); 8] = [
            (1.5, 2.25),
            (0.1, 0.2),
            (1e300, 1e280),
            (1e-300, 1e-280),
            (3.7, -3.7),
            (1.0, f64::EPSILON / 2.0),
            (-5.5, 2.25),
            (123456789.0, 0.000001),
        ];
        for (x, y) in cases {
            let r = c.add(&BigFloat::from_f64(x), &BigFloat::from_f64(y));
            assert_eq!(r.to_f64(), x + y, "add({x}, {y})");
        }
    }

    #[test]
    fn sub_matches_f64() {
        let c = Context::new(53);
        let cases: [(f64, f64); 6] = [
            (1.5, 2.25),
            (0.3, 0.1),
            (1e16, 1.0),
            (1.0000000000000002, 1.0),
            (-2.5, -2.5),
            (1e-308, 1e-309),
        ];
        for (x, y) in cases {
            let r = c.sub(&BigFloat::from_f64(x), &BigFloat::from_f64(y));
            assert_eq!(r.to_f64(), x - y, "sub({x}, {y})");
        }
    }

    #[test]
    fn mul_matches_f64() {
        let c = Context::new(53);
        let cases: [(f64, f64); 6] = [
            (1.5, 2.25),
            (0.1, 0.2),
            (1e150, 1e-150),
            (-3.0, 7.0),
            (0.3, 0.3),
            (1e-200, 1e-120),
        ];
        for (x, y) in cases {
            let r = c.mul(&BigFloat::from_f64(x), &BigFloat::from_f64(y));
            assert_eq!(r.to_f64(), x * y, "mul({x}, {y})");
        }
    }

    #[test]
    fn div_matches_f64() {
        let c = Context::new(53);
        let cases: [(f64, f64); 6] = [
            (1.0, 3.0),
            (2.0, 7.0),
            (1e300, 1e-5),
            (-10.0, 4.0),
            (0.3, 0.7),
            (1.0, 10.0),
        ];
        for (x, y) in cases {
            let r = c.div(&BigFloat::from_f64(x), &BigFloat::from_f64(y));
            assert_eq!(r.to_f64(), x / y, "div({x}, {y})");
        }
    }

    #[test]
    fn tiny_probabilities_survive() {
        // The motivating case: products far below binary64's 2^-1074.
        let c = ctx();
        let p = BigFloat::pow2(-100_000);
        let q = c.mul(&p, &p);
        assert_eq!(q.exponent(), Some(-200_000));
        let s = c.add(&q, &q);
        assert_eq!(s.exponent(), Some(-199_999));
    }

    #[test]
    fn catastrophic_cancellation_is_exact() {
        let c = ctx();
        let x = BigFloat::from_f64(1.0);
        let y = c.sub(&x, &BigFloat::pow2(-200));
        let back = c.sub(&x, &y);
        assert_eq!(back.exponent(), Some(-200));
    }

    #[test]
    fn add_far_apart_keeps_larger_with_sticky() {
        let c = Context::new(53);
        let big = BigFloat::from_f64(1.0);
        let tiny = BigFloat::pow2(-500);
        let r = c.add(&big, &tiny);
        // 1 + 2^-500 rounds to 1 at 53 bits...
        assert_eq!(r.to_f64(), 1.0);
        // ...but subtracting should reveal it was rounded (sticky made it
        // round *down* to exactly 1, not up).
        let r2 = c.sub(&big, &tiny);
        assert!(r2.to_f64() < 1.0 || r2.to_f64() == 1.0);
        // At high precision the sum is exact.
        let c2 = Context::new(600);
        let r3 = c2.add(&big, &tiny);
        let diff = c2.sub(&r3, &big);
        assert_eq!(diff.exponent(), Some(-500));
    }

    #[test]
    fn sub_sticky_rounds_toward_zero_correctly() {
        // x = 1, y = 2^-60 at 10 bits of result precision: 1 - eps must
        // round to 1 - 2^-10 is wrong; correct RNE answer is 1.0? No:
        // 1 - 2^-60 is closer to 1 than to the next 10-bit value below
        // (1 - 2^-10), so it rounds to 1.0.
        let c = Context::new(10);
        let r = c.sub(&BigFloat::from_f64(1.0), &BigFloat::pow2(-60));
        assert_eq!(r.to_f64(), 1.0);
        // 1 - 2^-11 sits exactly halfway between the 10-bit neighbors
        // 1 - 2^-10 and 1.0; the tie goes to the even mantissa, 1.0.
        let r = c.sub(&BigFloat::from_f64(1.0), &BigFloat::pow2(-11));
        assert_eq!(r.to_f64(), 1.0);
        // One sticky bit below the midpoint breaks the tie downward.
        let just_less = &BigFloat::pow2(-11) + &BigFloat::pow2(-40);
        let r = c.sub(&BigFloat::from_f64(1.0), &just_less);
        assert_eq!(r.to_f64(), 1.0 - 1.0 / 1024.0);
    }

    #[test]
    fn specials_propagate() {
        let c = ctx();
        let nan = BigFloat::nan();
        let inf = BigFloat::infinity(Sign::Pos);
        let one = BigFloat::one();
        assert!(c.add(&nan, &one).is_nan());
        assert!(c.sub(&inf, &inf).is_nan());
        assert!(c.mul(&inf, &BigFloat::zero()).is_nan());
        assert!(c.div(&BigFloat::zero(), &BigFloat::zero()).is_nan());
        assert_eq!(c.div(&one, &BigFloat::zero()).kind(), Kind::Inf);
        assert!(c.div(&one, &inf).is_zero());
        assert_eq!(c.add(&inf, &one).kind(), Kind::Inf);
    }

    #[test]
    fn div_exact_quotients() {
        let c = ctx();
        let r = c.div(&BigFloat::from_u64(10), &BigFloat::from_u64(2));
        assert_eq!(r.to_f64(), 5.0);
        let r = c.div(&BigFloat::from_u64(1), &BigFloat::from_u64(1024));
        assert_eq!(r.to_f64(), 1.0 / 1024.0);
    }

    #[test]
    fn div_one_third_round_trips() {
        let c = ctx();
        let third = c.div(&BigFloat::one(), &BigFloat::from_u64(3));
        let back = c.mul(&third, &BigFloat::from_u64(3));
        // 3 * round(1/3) is within 1 ulp of 1 at 256 bits.
        let err = c.sub(&back, &BigFloat::one()).abs();
        assert!(err.is_zero() || err.exponent().unwrap() < -250);
    }

    #[test]
    fn operators_use_max_precision() {
        let a = BigFloat::from_f64(0.1);
        let b = BigFloat::from_f64(0.2);
        let s = &a + &b;
        assert!((s.to_f64() - 0.30000000000000004).abs() < 1e-18);
        let p = &a * &b;
        assert!((p.to_f64() - 0.1 * 0.2).abs() < 1e-18);
    }

    #[test]
    fn sum_folds_left() {
        let c = ctx();
        let xs: Vec<BigFloat> = (1..=10).map(BigFloat::from_u64).collect();
        assert_eq!(c.sum(xs.iter()).to_f64(), 55.0);
    }
}
