//! Correctly-rounded arithmetic: add, sub, mul, div.
//!
//! All operations round to the precision of the [`Context`] (round to
//! nearest, ties to even) in a single rounding step — there is no double
//! rounding. Working arrays keep at least `prec + 66` bits plus a sticky
//! bit, which is sufficient for correct RNE results of `+ - * /`.
//!
//! Two kernel tiers sit below the `Context` API. Operands that fit the
//! hot fixed widths (anything up to 256-bit precision) route through
//! the allocation-free const-generic kernels in [`crate::limb::fixed`];
//! everything else falls back to the general slice kernels. Division is
//! word-at-a-time ([`crate::limb::div_rem_knuth`]) at every width. The
//! tiers are bit-identical by construction — both feed the single
//! rounding point — and are cross-checked by differential tests (see
//! `testing`).

use crate::limb::{self, Limb};
use crate::repr::{BigFloat, Kind, Sign, DEFAULT_PREC, MAX_PREC, MIN_PREC};

/// An arithmetic context carrying the target precision.
///
/// Mirrors MPFR's model: every operation rounds its mathematically exact
/// result to `prec` significant bits.
///
/// # Examples
///
/// ```
/// use compstat_bigfloat::{BigFloat, Context};
///
/// let ctx = Context::new(256);
/// let a = BigFloat::pow2(-120_000);
/// let b = ctx.mul(&a, &a);
/// assert_eq!(b.exponent(), Some(-240_000));
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Context {
    prec: u32,
}

impl Context {
    /// Creates a context with the given precision in bits.
    ///
    /// # Panics
    ///
    /// Panics if `prec` is outside `[2, 16384]`.
    #[must_use]
    pub fn new(prec: u32) -> Context {
        assert!(
            (MIN_PREC..=MAX_PREC).contains(&prec),
            "precision {prec} out of [2, 16384]"
        );
        Context { prec }
    }

    /// The context's precision in bits.
    #[must_use]
    pub fn prec(&self) -> u32 {
        self.prec
    }

    /// Addition, correctly rounded to the context precision.
    #[must_use]
    pub fn add(&self, a: &BigFloat, b: &BigFloat) -> BigFloat {
        add_signed(a, b, false, self.prec)
    }

    /// Subtraction, correctly rounded to the context precision.
    #[must_use]
    pub fn sub(&self, a: &BigFloat, b: &BigFloat) -> BigFloat {
        add_signed(a, b, true, self.prec)
    }

    /// Multiplication, correctly rounded to the context precision.
    #[must_use]
    pub fn mul(&self, a: &BigFloat, b: &BigFloat) -> BigFloat {
        mul_impl(a, b, self.prec)
    }

    /// Division, correctly rounded to the context precision.
    #[must_use]
    pub fn div(&self, a: &BigFloat, b: &BigFloat) -> BigFloat {
        div_impl(a, b, self.prec)
    }

    /// Sums a sequence left-to-right, rounding after each partial sum
    /// (the same associativity a software loop over `+=` would have).
    #[must_use]
    pub fn sum<'a, I: IntoIterator<Item = &'a BigFloat>>(&self, values: I) -> BigFloat {
        let mut acc = BigFloat::zero();
        for v in values {
            acc = self.add(&acc, v);
        }
        acc
    }

    /// Rounds `x` to the context precision (round to nearest, ties to
    /// even) — MPFR's `mpfr_set` with a target precision. Idempotent:
    /// a value already representable at `prec` bits passes unchanged,
    /// so `ctx.round(&ctx.round(x)) == ctx.round(x)` always.
    #[must_use]
    pub fn round(&self, x: &BigFloat) -> BigFloat {
        x.round_to(self.prec)
    }
}

impl Default for Context {
    fn default() -> Self {
        Context { prec: DEFAULT_PREC }
    }
}

fn nlimbs(prec: u32) -> usize {
    prec.div_ceil(limb::LIMB_BITS) as usize
}

/// Places `src` (normalized: top bit of last limb set) into a fresh array
/// of `wl` limbs with its top bit at bit index `wl*64 - 2` (one headroom
/// bit below the array MSB).
fn place_with_headroom(src: &[u64], wl: usize) -> Vec<u64> {
    debug_assert!(wl > src.len());
    let mut arr = vec![0u64; wl];
    // Copy into the high limbs, then shift right by 1 to create headroom.
    arr[wl - src.len()..].copy_from_slice(src);
    let sticky = limb::shr_in_place_sticky(&mut arr, 1);
    debug_assert!(!sticky, "normalized operand had a set LSB beyond range");
    arr
}

fn add_signed(a: &BigFloat, b: &BigFloat, negate_b: bool, prec: u32) -> BigFloat {
    add_signed_with(a, b, negate_b, prec, false)
}

fn add_signed_with(
    a: &BigFloat,
    b: &BigFloat,
    negate_b: bool,
    prec: u32,
    force_general: bool,
) -> BigFloat {
    let (sa, ka, ea, la, _) = a.parts();
    let (sb0, kb, eb, lb, _) = b.parts();
    let sb = if negate_b && !matches!(kb, Kind::Zero | Kind::Nan) {
        sb0.negate()
    } else {
        sb0
    };
    match (ka, kb) {
        (Kind::Nan, _) | (_, Kind::Nan) => return BigFloat::special(Kind::Nan, Sign::Pos, prec),
        (Kind::Inf, Kind::Inf) => {
            return if sa == sb {
                BigFloat::special(Kind::Inf, sa, prec)
            } else {
                BigFloat::special(Kind::Nan, Sign::Pos, prec)
            };
        }
        (Kind::Inf, _) => return BigFloat::special(Kind::Inf, sa, prec),
        (_, Kind::Inf) => return BigFloat::special(Kind::Inf, sb, prec),
        (Kind::Zero, Kind::Zero) => return BigFloat::special(Kind::Zero, Sign::Pos, prec),
        (Kind::Zero, Kind::Normal) => {
            let r = b.round_to(prec);
            return if negate_b { r.neg() } else { r };
        }
        (Kind::Normal, Kind::Zero) => return a.round_to(prec),
        (Kind::Normal, Kind::Normal) => {}
    }

    // Order so that |x| >= |y|.
    let a_larger = match ea.cmp(&eb) {
        core::cmp::Ordering::Greater => true,
        core::cmp::Ordering::Less => false,
        core::cmp::Ordering::Equal => cmp_magnitude(la, lb) != core::cmp::Ordering::Less,
    };
    let (sx, ex, lx, sy, ey, ly) = if a_larger {
        (sa, ea, la, sb, eb, lb)
    } else {
        (sb, eb, lb, sa, ea, la)
    };

    // Fixed-width fast paths: everything up to 256-bit precision with
    // operands no wider than the target stays on the stack.
    if !force_general {
        match lx.len().max(ly.len()).max(nlimbs(prec)) + 2 {
            3 => return add_core_fixed::<3>(sx, ex, lx, sy, ey, ly, prec),
            4 => return add_core_fixed::<4>(sx, ex, lx, sy, ey, ly, prec),
            5 => return add_core_fixed::<5>(sx, ex, lx, sy, ey, ly, prec),
            6 => return add_core_fixed::<6>(sx, ex, lx, sy, ey, ly, prec),
            _ => {}
        }
    }
    add_core_general(sx, ex, lx, sy, ey, ly, prec)
}

/// The magnitude add/sub core over heap buffers of `wl` limbs — the
/// general path for arbitrary widths.
fn add_core_general(
    sx: Sign,
    ex: i64,
    lx: &[u64],
    sy: Sign,
    ey: i64,
    ly: &[u64],
    prec: u32,
) -> BigFloat {
    let wl = lx.len().max(ly.len()).max(nlimbs(prec)) + 2;
    let top_pos = wl as u64 * 64 - 2;
    let ax = place_with_headroom(lx, wl);
    let mut ay = place_with_headroom(ly, wl);
    // ex >= ey by construction; the difference can still overflow i64 for
    // astronomically separated exponents, which simply means "y is dust".
    let d = ex.checked_sub(ey).map(|d| d as u64);
    let sticky_y = match d {
        Some(d) if d <= top_pos => limb::shr_in_place_sticky(&mut ay, d as u32),
        _ => {
            ay.fill(0);
            true
        }
    };

    let same_sign = sx == sy;
    let mut out = vec![0u64; wl];
    let mut sticky = sticky_y;
    if same_sign {
        let carry = limb::add_same_len(&ax, &ay, &mut out);
        debug_assert!(!carry, "headroom bit absorbed the carry");
    } else {
        // |x| >= |y_shifted| (strictly, unless d == 0 where sticky_y is
        // false). Equal magnitudes cancel to zero.
        if limb::cmp_same_len(&ax, &ay) == core::cmp::Ordering::Equal && !sticky_y {
            return BigFloat::special(Kind::Zero, Sign::Pos, prec);
        }
        let borrow = limb::sub_same_len(&ax, &ay, &mut out);
        debug_assert!(!borrow, "subtrahend exceeded minuend");
        if sticky_y {
            // True result is out - epsilon with epsilon in (0,1) units of
            // the array LSB; re-expressing as (out-1) + (1-epsilon) keeps
            // the residue positive so the sticky bit rounds correctly.
            let mut one = vec![0u64; wl];
            one[0] = 1;
            let mut dec = vec![0u64; wl];
            let borrow = limb::sub_same_len(&out, &one, &mut dec);
            debug_assert!(!borrow);
            out = dec;
            sticky = true;
        }
    }

    let Some(h) = limb::highest_bit(&out) else {
        return BigFloat::special(Kind::Zero, Sign::Pos, prec);
    };
    let exp_of_top = ex as i128 - (top_pos as i128 - h as i128);
    BigFloat::from_raw_wide(sx, exp_of_top, out, sticky, prec)
}

/// The same magnitude add/sub core over `[u64; W]` stack buffers —
/// mirrors `add_core_general` step for step so results are identical,
/// but with no heap traffic and unrolled limb loops.
fn add_core_fixed<const W: usize>(
    sx: Sign,
    ex: i64,
    lx: &[u64],
    sy: Sign,
    ey: i64,
    ly: &[u64],
    prec: u32,
) -> BigFloat {
    debug_assert!(lx.len() < W && ly.len() < W);
    let top_pos = W as u64 * 64 - 2;
    let mut ax = [0u64; W];
    ax[W - lx.len()..].copy_from_slice(lx);
    let s = limb::shr_in_place_sticky(&mut ax, 1);
    debug_assert!(!s, "normalized operand had a set LSB beyond range");
    let mut ay = [0u64; W];
    ay[W - ly.len()..].copy_from_slice(ly);
    let s = limb::shr_in_place_sticky(&mut ay, 1);
    debug_assert!(!s, "normalized operand had a set LSB beyond range");
    let d = ex.checked_sub(ey).map(|d| d as u64);
    let sticky_y = match d {
        Some(d) if d <= top_pos => limb::shr_in_place_sticky(&mut ay, d as u32),
        _ => {
            ay = [0u64; W];
            true
        }
    };

    let mut sticky = sticky_y;
    let out = if sx == sy {
        let (out, carry) = limb::fixed::add(&ax, &ay);
        debug_assert!(!carry, "headroom bit absorbed the carry");
        out
    } else {
        if limb::fixed::cmp(&ax, &ay) == core::cmp::Ordering::Equal && !sticky_y {
            return BigFloat::special(Kind::Zero, Sign::Pos, prec);
        }
        let (diff, borrow) = limb::fixed::sub(&ax, &ay);
        debug_assert!(!borrow, "subtrahend exceeded minuend");
        if sticky_y {
            // See add_core_general: (out-1) + (1-epsilon) keeps the
            // discarded residue positive for the sticky bit.
            let mut one = [0u64; W];
            one[0] = 1;
            let (dec, borrow) = limb::fixed::sub(&diff, &one);
            debug_assert!(!borrow);
            sticky = true;
            dec
        } else {
            diff
        }
    };

    let Some(h) = limb::highest_bit(&out) else {
        return BigFloat::special(Kind::Zero, Sign::Pos, prec);
    };
    let exp_of_top = ex as i128 - (top_pos as i128 - h as i128);
    BigFloat::from_raw_wide(sx, exp_of_top, out.to_vec(), sticky, prec)
}

fn cmp_magnitude(a: &[u64], b: &[u64]) -> core::cmp::Ordering {
    // Both normalized with the top bit of the last limb set; compare from
    // the top down, treating the shorter as zero-extended at the bottom.
    let mut i = a.len();
    let mut j = b.len();
    while i > 0 && j > 0 {
        i -= 1;
        j -= 1;
        match a[i].cmp(&b[j]) {
            core::cmp::Ordering::Equal => {}
            other => return other,
        }
    }
    while i > 0 {
        i -= 1;
        if a[i] != 0 {
            return core::cmp::Ordering::Greater;
        }
    }
    while j > 0 {
        j -= 1;
        if b[j] != 0 {
            return core::cmp::Ordering::Less;
        }
    }
    core::cmp::Ordering::Equal
}

fn mul_impl(a: &BigFloat, b: &BigFloat, prec: u32) -> BigFloat {
    mul_impl_with(a, b, prec, false)
}

fn mul_impl_with(a: &BigFloat, b: &BigFloat, prec: u32, force_general: bool) -> BigFloat {
    let (sa, ka, ea, la, _) = a.parts();
    let (sb, kb, eb, lb, _) = b.parts();
    let sign = sa.xor(sb);
    match (ka, kb) {
        (Kind::Nan, _) | (_, Kind::Nan) => return BigFloat::special(Kind::Nan, Sign::Pos, prec),
        (Kind::Inf, Kind::Zero) | (Kind::Zero, Kind::Inf) => {
            return BigFloat::special(Kind::Nan, Sign::Pos, prec)
        }
        (Kind::Inf, _) | (_, Kind::Inf) => return BigFloat::special(Kind::Inf, sign, prec),
        (Kind::Zero, _) | (_, Kind::Zero) => return BigFloat::special(Kind::Zero, Sign::Pos, prec),
        (Kind::Normal, Kind::Normal) => {}
    }
    // The significand product is exact in every tier; the fixed-width
    // kernels just do it without heap allocation or length dispatch.
    let out: Vec<u64> = match (la.len(), lb.len()) {
        _ if force_general => mul_slices(la, lb),
        (1, 1) => {
            let (lo, hi) = Limb::widening_mul(la[0], lb[0]);
            vec![lo, hi]
        }
        (2, 2) => {
            let a2: &[u64; 2] = la.try_into().expect("len checked");
            let b2: &[u64; 2] = lb.try_into().expect("len checked");
            limb::fixed::mul::<u64, 2, 4>(a2, b2).to_vec()
        }
        (4, 4) => {
            let a4: &[u64; 4] = la.try_into().expect("len checked");
            let b4: &[u64; 4] = lb.try_into().expect("len checked");
            limb::fixed::mul::<u64, 4, 8>(a4, b4).to_vec()
        }
        _ => mul_slices(la, lb),
    };
    let top_a = la.len() as i128 * 64 - 1;
    let top_b = lb.len() as i128 * 64 - 1;
    let h = limb::highest_bit(&out).expect("product of normals is nonzero");
    // Exponents combine in i128: |ea + eb| plus bit-index adjustments
    // cannot overflow it, and from_raw_wide saturates to Inf/Zero when
    // the final exponent leaves the i64 range.
    let exp_of_top = ea as i128 + eb as i128 - top_a - top_b + h as i128;
    BigFloat::from_raw_wide(sign, exp_of_top, out, false, prec)
}

fn mul_slices(la: &[u64], lb: &[u64]) -> Vec<u64> {
    let mut out = vec![0u64; la.len() + lb.len()];
    limb::mul(la, lb, &mut out);
    out
}

fn div_specials(ka: Kind, kb: Kind, sign: Sign, prec: u32) -> Option<BigFloat> {
    match (ka, kb) {
        (Kind::Nan, _) | (_, Kind::Nan) => Some(BigFloat::special(Kind::Nan, Sign::Pos, prec)),
        (Kind::Inf, Kind::Inf) => Some(BigFloat::special(Kind::Nan, Sign::Pos, prec)),
        (Kind::Inf, _) => Some(BigFloat::special(Kind::Inf, sign, prec)),
        (_, Kind::Inf) => Some(BigFloat::special(Kind::Zero, Sign::Pos, prec)),
        (Kind::Zero, Kind::Zero) => Some(BigFloat::special(Kind::Nan, Sign::Pos, prec)),
        (Kind::Zero, Kind::Normal) => Some(BigFloat::special(Kind::Zero, Sign::Pos, prec)),
        (Kind::Normal, Kind::Zero) => Some(BigFloat::special(Kind::Inf, sign, prec)),
        (Kind::Normal, Kind::Normal) => None,
    }
}

fn div_impl(a: &BigFloat, b: &BigFloat, prec: u32) -> BigFloat {
    let (sa, ka, ea, la, _) = a.parts();
    let (sb, kb, eb, lb, _) = b.parts();
    let sign = sa.xor(sb);
    if let Some(r) = div_specials(ka, kb, sign, prec) {
        return r;
    }

    // Word-at-a-time division: widen the dividend by k whole limbs so
    // the integer quotient floor(A·2^(64k) / B) carries at least
    // prec + 64 significant bits, then let the remainder drive an exact
    // sticky bit. One correctly-rounded result, same as the restoring
    // bit loop this replaced (kept as `testing::div_restoring`), at
    // O(n·m) limb ops instead of O(prec·n).
    let ql = prec as usize / 64 + 2;
    let k = (lb.len() + ql).saturating_sub(la.len());
    let (q, r) = if k == 0 {
        // Dividend already k-limbs wider than needed; quotient keeps
        // >= 64*ql - 1 bits regardless.
        limb::div_rem_knuth(la, lb)
    } else {
        let mut num = vec![0u64; la.len() + k];
        num[k..].copy_from_slice(la);
        limb::div_rem_knuth(&num, lb)
    };
    let sticky = !limb::is_zero(&r);
    let h = limb::highest_bit(&q).expect("quotient of normals is nonzero");
    let top_a = la.len() as i128 * 64 - 1;
    let top_b = lb.len() as i128 * 64 - 1;
    // a/b = (Q + r/B) · 2^E with E = ea - eb + top_b - top_a - 64k, so
    // bit i of Q has weight 2^(i+E) and the top bit carries E + h.
    let exp_of_top = ea as i128 - eb as i128 + top_b - top_a - 64 * k as i128 + h as i128;
    BigFloat::from_raw_wide(sign, exp_of_top, q, sticky, prec)
}

/// The pre-rewrite restoring bit-by-bit division, kept as a slow
/// differential reference for the Knuth-D path (`prec + 3` full-slice
/// compare/sub/shift passes).
fn div_impl_restoring(a: &BigFloat, b: &BigFloat, prec: u32) -> BigFloat {
    let (sa, ka, ea, la, _) = a.parts();
    let (sb, kb, eb, lb, _) = b.parts();
    let sign = sa.xor(sb);
    if let Some(r) = div_specials(ka, kb, sign, prec) {
        return r;
    }

    // Restoring binary long division on magnitudes aligned to a common
    // width, producing prec + 3 quotient bits plus an exact sticky.
    let wl = la.len().max(lb.len()) + 1;
    let mut r = vec![0u64; wl];
    let mut den = vec![0u64; wl];
    // Align both tops to bit wl*64 - 2 (headroom for the shift).
    r[wl - la.len()..].copy_from_slice(la);
    den[wl - lb.len()..].copy_from_slice(lb);
    limb::shr_in_place_sticky(&mut r, 1);
    limb::shr_in_place_sticky(&mut den, 1);

    let qbits = prec as u64 + 3;
    let qlimbs = qbits.div_ceil(64) as usize;
    let mut q = vec![0u64; qlimbs];
    let mut tmp = vec![0u64; wl];
    for i in 0..qbits {
        if limb::cmp_same_len(&r, &den) != core::cmp::Ordering::Less {
            let borrow = limb::sub_same_len(&r, &den, &mut tmp);
            debug_assert!(!borrow);
            core::mem::swap(&mut r, &mut tmp);
            limb::add_bit(&mut q, qbits - 1 - i);
        }
        limb::shl_in_place(&mut r, 1);
    }
    let sticky = !limb::is_zero(&r);
    let Some(h) = limb::highest_bit(&q) else {
        // Quotient in (1/2, 2) always produces at least one bit.
        unreachable!("quotient of normals is nonzero");
    };
    // Bit (qbits-1) of q carries weight 2^0 of the aligned ratio.
    let exp_of_top = ea as i128 - eb as i128 - (qbits as i128 - 1) + h as i128;
    BigFloat::from_raw_wide(sign, exp_of_top, q, sticky, prec)
}

/// Differential-test hooks: the general slice kernels and the retired
/// restoring division, callable directly so test suites can prove the
/// specialized fast paths bit-identical to them. Not a public API.
#[doc(hidden)]
pub mod testing {
    use super::*;

    /// Addition forced through the general slice kernels.
    #[must_use]
    pub fn add_general(a: &BigFloat, b: &BigFloat, prec: u32) -> BigFloat {
        add_signed_with(a, b, false, prec, true)
    }

    /// Subtraction forced through the general slice kernels.
    #[must_use]
    pub fn sub_general(a: &BigFloat, b: &BigFloat, prec: u32) -> BigFloat {
        add_signed_with(a, b, true, prec, true)
    }

    /// Multiplication forced through the general slice kernels.
    #[must_use]
    pub fn mul_general(a: &BigFloat, b: &BigFloat, prec: u32) -> BigFloat {
        mul_impl_with(a, b, prec, true)
    }

    /// Division via the pre-rewrite restoring bit-by-bit algorithm.
    #[must_use]
    pub fn div_restoring(a: &BigFloat, b: &BigFloat, prec: u32) -> BigFloat {
        div_impl_restoring(a, b, prec)
    }
}

impl core::ops::Neg for &BigFloat {
    type Output = BigFloat;
    fn neg(self) -> BigFloat {
        BigFloat::neg(self)
    }
}

macro_rules! bin_op {
    ($trait:ident, $method:ident, $ctx_method:ident) => {
        impl core::ops::$trait<&BigFloat> for &BigFloat {
            type Output = BigFloat;
            fn $method(self, rhs: &BigFloat) -> BigFloat {
                let prec = self.precision().max(rhs.precision());
                Context::new(prec).$ctx_method(self, rhs)
            }
        }
        impl core::ops::$trait<BigFloat> for BigFloat {
            type Output = BigFloat;
            fn $method(self, rhs: BigFloat) -> BigFloat {
                (&self).$method(&rhs)
            }
        }
    };
}

bin_op!(Add, add, add);
bin_op!(Sub, sub, sub);
bin_op!(Mul, mul, mul);
bin_op!(Div, div, div);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bit_identical;

    fn ctx() -> Context {
        Context::new(256)
    }

    #[test]
    fn add_small_integers() {
        let c = ctx();
        let r = c.add(&BigFloat::from_u64(2), &BigFloat::from_u64(3));
        assert_eq!(r.to_f64(), 5.0);
    }

    #[test]
    fn add_matches_f64_on_random_values() {
        let c = Context::new(53);
        let cases: [(f64, f64); 8] = [
            (1.5, 2.25),
            (0.1, 0.2),
            (1e300, 1e280),
            (1e-300, 1e-280),
            (3.7, -3.7),
            (1.0, f64::EPSILON / 2.0),
            (-5.5, 2.25),
            (123456789.0, 0.000001),
        ];
        for (x, y) in cases {
            let r = c.add(&BigFloat::from_f64(x), &BigFloat::from_f64(y));
            assert_eq!(r.to_f64(), x + y, "add({x}, {y})");
        }
    }

    #[test]
    fn sub_matches_f64() {
        let c = Context::new(53);
        let cases: [(f64, f64); 6] = [
            (1.5, 2.25),
            (0.3, 0.1),
            (1e16, 1.0),
            (1.0000000000000002, 1.0),
            (-2.5, -2.5),
            (1e-308, 1e-309),
        ];
        for (x, y) in cases {
            let r = c.sub(&BigFloat::from_f64(x), &BigFloat::from_f64(y));
            assert_eq!(r.to_f64(), x - y, "sub({x}, {y})");
        }
    }

    #[test]
    fn mul_matches_f64() {
        let c = Context::new(53);
        let cases: [(f64, f64); 6] = [
            (1.5, 2.25),
            (0.1, 0.2),
            (1e150, 1e-150),
            (-3.0, 7.0),
            (0.3, 0.3),
            (1e-200, 1e-120),
        ];
        for (x, y) in cases {
            let r = c.mul(&BigFloat::from_f64(x), &BigFloat::from_f64(y));
            assert_eq!(r.to_f64(), x * y, "mul({x}, {y})");
        }
    }

    #[test]
    fn div_matches_f64() {
        let c = Context::new(53);
        let cases: [(f64, f64); 6] = [
            (1.0, 3.0),
            (2.0, 7.0),
            (1e300, 1e-5),
            (-10.0, 4.0),
            (0.3, 0.7),
            (1.0, 10.0),
        ];
        for (x, y) in cases {
            let r = c.div(&BigFloat::from_f64(x), &BigFloat::from_f64(y));
            assert_eq!(r.to_f64(), x / y, "div({x}, {y})");
        }
    }

    #[test]
    fn tiny_probabilities_survive() {
        // The motivating case: products far below binary64's 2^-1074.
        let c = ctx();
        let p = BigFloat::pow2(-100_000);
        let q = c.mul(&p, &p);
        assert_eq!(q.exponent(), Some(-200_000));
        let s = c.add(&q, &q);
        assert_eq!(s.exponent(), Some(-199_999));
    }

    #[test]
    fn catastrophic_cancellation_is_exact() {
        let c = ctx();
        let x = BigFloat::from_f64(1.0);
        let y = c.sub(&x, &BigFloat::pow2(-200));
        let back = c.sub(&x, &y);
        assert_eq!(back.exponent(), Some(-200));
    }

    #[test]
    fn add_far_apart_keeps_larger_with_sticky() {
        let c = Context::new(53);
        let big = BigFloat::from_f64(1.0);
        let tiny = BigFloat::pow2(-500);
        let r = c.add(&big, &tiny);
        // 1 + 2^-500 rounds to 1 at 53 bits...
        assert_eq!(r.to_f64(), 1.0);
        // ...but subtracting should reveal it was rounded (sticky made it
        // round *down* to exactly 1, not up).
        let r2 = c.sub(&big, &tiny);
        assert!(r2.to_f64() < 1.0 || r2.to_f64() == 1.0);
        // At high precision the sum is exact.
        let c2 = Context::new(600);
        let r3 = c2.add(&big, &tiny);
        let diff = c2.sub(&r3, &big);
        assert_eq!(diff.exponent(), Some(-500));
    }

    #[test]
    fn sub_sticky_rounds_toward_zero_correctly() {
        // x = 1, y = 2^-60 at 10 bits of result precision: 1 - eps must
        // round to 1 - 2^-10 is wrong; correct RNE answer is 1.0? No:
        // 1 - 2^-60 is closer to 1 than to the next 10-bit value below
        // (1 - 2^-10), so it rounds to 1.0.
        let c = Context::new(10);
        let r = c.sub(&BigFloat::from_f64(1.0), &BigFloat::pow2(-60));
        assert_eq!(r.to_f64(), 1.0);
        // 1 - 2^-11 sits exactly halfway between the 10-bit neighbors
        // 1 - 2^-10 and 1.0; the tie goes to the even mantissa, 1.0.
        let r = c.sub(&BigFloat::from_f64(1.0), &BigFloat::pow2(-11));
        assert_eq!(r.to_f64(), 1.0);
        // One sticky bit below the midpoint breaks the tie downward.
        let just_less = &BigFloat::pow2(-11) + &BigFloat::pow2(-40);
        let r = c.sub(&BigFloat::from_f64(1.0), &just_less);
        assert_eq!(r.to_f64(), 1.0 - 1.0 / 1024.0);
    }

    #[test]
    fn specials_propagate() {
        let c = ctx();
        let nan = BigFloat::nan();
        let inf = BigFloat::infinity(Sign::Pos);
        let one = BigFloat::one();
        assert!(c.add(&nan, &one).is_nan());
        assert!(c.sub(&inf, &inf).is_nan());
        assert!(c.mul(&inf, &BigFloat::zero()).is_nan());
        assert!(c.div(&BigFloat::zero(), &BigFloat::zero()).is_nan());
        assert_eq!(c.div(&one, &BigFloat::zero()).kind(), Kind::Inf);
        assert!(c.div(&one, &inf).is_zero());
        assert_eq!(c.add(&inf, &one).kind(), Kind::Inf);
    }

    #[test]
    fn div_exact_quotients() {
        let c = ctx();
        let r = c.div(&BigFloat::from_u64(10), &BigFloat::from_u64(2));
        assert_eq!(r.to_f64(), 5.0);
        let r = c.div(&BigFloat::from_u64(1), &BigFloat::from_u64(1024));
        assert_eq!(r.to_f64(), 1.0 / 1024.0);
    }

    #[test]
    fn div_one_third_round_trips() {
        let c = ctx();
        let third = c.div(&BigFloat::one(), &BigFloat::from_u64(3));
        let back = c.mul(&third, &BigFloat::from_u64(3));
        // 3 * round(1/3) is within 1 ulp of 1 at 256 bits.
        let err = c.sub(&back, &BigFloat::one()).abs();
        assert!(err.is_zero() || err.exponent().unwrap() < -250);
    }

    #[test]
    fn div_matches_restoring_reference() {
        // Spot check: the Knuth-D quotient path must agree bit-for-bit
        // with the retired restoring division (the full differential
        // proptests live in tests/kernels.rs).
        let vals = [0.3, 1.0 / 3.0, 7.25, 1e-17, 123456.789, 2.0];
        for prec in [24u32, 53, 128, 256, 1024] {
            let c = Context::new(prec);
            for &x in &vals {
                for &y in &vals {
                    let a = BigFloat::from_f64(x);
                    let b = BigFloat::from_f64(y);
                    let new = c.div(&a, &b);
                    let old = testing::div_restoring(&a, &b, prec);
                    assert!(
                        bit_identical(&new, &old),
                        "div({x}, {y}) at prec {prec} diverged"
                    );
                }
            }
        }
    }

    #[test]
    fn mul_exponent_saturates_to_inf() {
        // exp(1.5 * 2^MAX * 1.5) = i64::MAX + 1: must saturate, not
        // panic (the old i64 exponent arithmetic overflowed in debug).
        let c = ctx();
        let big = BigFloat::from_f64(1.5).mul_pow2(i64::MAX);
        let r = c.mul(&big, &BigFloat::from_f64(1.5));
        assert_eq!(r.kind(), Kind::Inf);
        assert_eq!(r.sign(), Sign::Pos);
        let rneg = c.mul(&big.neg(), &BigFloat::from_f64(1.5));
        assert_eq!(rneg.kind(), Kind::Inf);
        assert_eq!(rneg.sign(), Sign::Neg);
    }

    #[test]
    fn mul_exponent_saturates_to_zero() {
        let c = ctx();
        let tiny = BigFloat::from_f64(0.75).mul_pow2(i64::MIN + 1);
        let r = c.mul(&tiny, &tiny);
        assert!(r.is_zero());
        assert_eq!(r.sign(), Sign::Pos);
    }

    #[test]
    fn mul_stays_finite_at_exponent_boundary() {
        let c = ctx();
        let r = c.mul(&BigFloat::pow2(i64::MAX), &BigFloat::from_f64(0.5));
        assert_eq!(r.exponent(), Some(i64::MAX - 1));
        let r = c.mul(&BigFloat::pow2(i64::MAX), &BigFloat::one());
        assert_eq!(r.exponent(), Some(i64::MAX));
        let r = c.mul(&BigFloat::pow2(i64::MAX), &BigFloat::from_u64(2));
        assert_eq!(r.kind(), Kind::Inf);
        let r = c.mul(&BigFloat::pow2(i64::MIN), &BigFloat::one());
        assert_eq!(r.exponent(), Some(i64::MIN));
    }

    #[test]
    fn mul_huge_opposite_exponents_cancel_to_finite() {
        // Regression for the old checked_add fallback: opposite-sign
        // exponent extremes must produce the exact finite product, never
        // NaN. 2^MAX * 2^(MIN+1) = 2^0.
        let c = ctx();
        let r = c.mul(&BigFloat::pow2(i64::MAX), &BigFloat::pow2(i64::MIN + 1));
        assert_eq!(r.exponent(), Some(0));
        assert_eq!(r.to_f64(), 1.0);
        let r = c.mul(&BigFloat::pow2(i64::MIN + 1), &BigFloat::pow2(i64::MAX));
        assert!(!r.is_nan());
        assert_eq!(r.exponent(), Some(0));
    }

    #[test]
    fn div_exponent_saturates() {
        let c = ctx();
        // exp(2^MAX / 2^MIN) = MAX - MIN, far past i64: saturate to Inf.
        let r = c.div(&BigFloat::pow2(i64::MAX), &BigFloat::pow2(i64::MIN));
        assert_eq!(r.kind(), Kind::Inf);
        assert_eq!(r.sign(), Sign::Pos);
        let r = c.div(
            &BigFloat::from_f64(-1.0).mul_pow2(i64::MAX),
            &BigFloat::pow2(i64::MIN),
        );
        assert_eq!(r.kind(), Kind::Inf);
        assert_eq!(r.sign(), Sign::Neg);
        // And the mirror image underflows to the single unsigned zero.
        let r = c.div(&BigFloat::pow2(i64::MIN), &BigFloat::pow2(i64::MAX));
        assert!(r.is_zero());
        assert_eq!(r.sign(), Sign::Pos);
        // Exactly at the boundary stays finite.
        let r = c.div(&BigFloat::pow2(i64::MIN + 10), &BigFloat::pow2(10));
        assert_eq!(r.exponent(), Some(i64::MIN));
    }

    #[test]
    fn add_exponent_saturates_at_range_edges() {
        let c = ctx();
        // 2^MAX + 2^MAX = 2^(MAX+1): overflow to Inf instead of panicking.
        let r = c.add(&BigFloat::pow2(i64::MAX), &BigFloat::pow2(i64::MAX));
        assert_eq!(r.kind(), Kind::Inf);
        assert_eq!(r.sign(), Sign::Pos);
        // 1.5*2^MIN - 2^MIN = 2^(MIN-1): underflow to zero.
        let a = BigFloat::from_f64(1.5).mul_pow2(i64::MIN);
        let r = c.sub(&a, &BigFloat::pow2(i64::MIN));
        assert!(r.is_zero());
    }

    #[test]
    fn operators_use_max_precision() {
        let a = BigFloat::from_f64(0.1);
        let b = BigFloat::from_f64(0.2);
        let s = &a + &b;
        assert!((s.to_f64() - 0.30000000000000004).abs() < 1e-18);
        let p = &a * &b;
        assert!((p.to_f64() - 0.1 * 0.2).abs() < 1e-18);
    }

    #[test]
    fn sum_folds_left() {
        let c = ctx();
        let xs: Vec<BigFloat> = (1..=10).map(BigFloat::from_u64).collect();
        assert_eq!(c.sum(xs.iter()).to_f64(), 55.0);
    }
}
