//! # compstat
//!
//! A Rust reproduction of *"Design and accuracy trade-offs in
//! Computational Statistics"* (IISWC 2025): posit vs. binary64 vs.
//! log-space arithmetic for statistical computations on extremely small
//! probabilities, with models of the paper's FPGA accelerators.
//!
//! This umbrella crate re-exports the workspace:
//!
//! * [`bigfloat`] — arbitrary-precision oracle arithmetic (the MPFR
//!   stand-in);
//! * [`posit`] — `posit(N, ES)` software arithmetic;
//! * [`logspace`] — log-domain numbers with Log-Sum-Exp addition;
//! * [`core`] — the [`core::StatFloat`] abstraction, error metrics,
//!   samplers, statistics;
//! * [`runtime`] — the deterministic chunked parallel-map engine
//!   (`COMPSTAT_THREADS`; parallel results are bitwise-identical to
//!   serial ones);
//! * [`hmm`] — the forward algorithm (VICAR case study);
//! * [`pbd`] — the Poisson Binomial Distribution (LoFreq case study);
//! * [`fpga`] — the accelerator performance/resource models.
//!
//! # Quickstart
//!
//! ```
//! use compstat::posit::P64E18;
//! use compstat::logspace::LogF64;
//!
//! // Multiply 3,000 probabilities of ~0.3 each: the result is near
//! // 2^-5200, far below binary64's floor.
//! let p = 0.3f64;
//! let mut in_f64 = 1.0f64;
//! let mut in_posit = P64E18::ONE;
//! let mut in_log = LogF64::ONE;
//! for _ in 0..3_000 {
//!     in_f64 *= p;
//!     in_posit = in_posit * P64E18::from_f64(p);
//!     in_log = in_log * LogF64::from_f64(p);
//! }
//! assert_eq!(in_f64, 0.0);        // binary64 underflows
//! assert!(!in_posit.is_zero());   // posit holds the value
//! assert!(!in_log.is_zero());     // log-space holds it too
//! ```

pub use compstat_bigfloat as bigfloat;
pub use compstat_core as core;
pub use compstat_fpga as fpga;
pub use compstat_hmm as hmm;
pub use compstat_logspace as logspace;
pub use compstat_pbd as pbd;
pub use compstat_posit as posit;
pub use compstat_runtime as runtime;
